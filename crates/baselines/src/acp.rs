//! ACP — Adaptive Cached Planning (Shi et al. \[6\], §VIII-A).
//!
//! ACP accelerates planning with a *path cache*: the spatial shortest path
//! between an origin–destination pair is computed once (BFS, ignoring
//! time/traffic) and reused for every later request on the same pair. A
//! request then simply *walks* the cached path, inserting waits whenever
//! the next cell is reserved — "directly use the cached shortest path and
//! simply wait till no collision will happen". When greedy waiting exceeds
//! its budget (e.g. a head-on robot on the same corridor), the planner
//! falls back to full space-time A\*.
//!
//! The cache trades memory for speed — visible in the paper's MC plots.

use crate::common::Commitments;
use carp_spacetime::{AStarConfig, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::{HashMap, VecDeque};

/// ACP configuration.
#[derive(Debug, Clone, Copy)]
pub struct AcpConfig {
    /// Longest total waiting a cached-path walk may accumulate before the
    /// planner falls back to space-time A\*.
    pub max_total_wait: Time,
    /// Fallback search limits.
    pub astar: AStarConfig,
}

impl Default for AcpConfig {
    fn default() -> Self {
        AcpConfig {
            max_total_wait: 64,
            astar: AStarConfig::default(),
        }
    }
}

/// Counters for the ACP planner.
#[derive(Debug, Default, Clone, Copy)]
pub struct AcpStats {
    /// Requests answered from the cache (possibly with waits).
    pub cache_hits: usize,
    /// Spatial shortest paths computed and inserted into the cache.
    pub cache_fills: usize,
    /// Requests that needed the space-time A\* fallback.
    pub fallbacks: usize,
}

/// The ACP planner.
#[derive(Debug, Clone)]
pub struct AcpPlanner {
    matrix: WarehouseMatrix,
    astar: SpaceTimeAStar,
    commitments: Commitments,
    /// Spatial path cache: `(origin, destination)` → grid sequence.
    cache: HashMap<(Cell, Cell), Vec<Cell>>,
    config: AcpConfig,
    /// Counters.
    pub stats: AcpStats,
    /// High-water mark of search runtime memory.
    pub search_peak_bytes: usize,
}

impl AcpPlanner {
    /// Create an ACP planner.
    pub fn new(matrix: WarehouseMatrix, config: AcpConfig) -> Self {
        AcpPlanner {
            matrix,
            astar: SpaceTimeAStar::new(config.astar),
            commitments: Commitments::new(),
            cache: HashMap::new(),
            config,
            stats: AcpStats::default(),
            search_peak_bytes: 0,
        }
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.commitments.len()
    }

    /// Number of cached spatial paths.
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Spatial shortest path by BFS, treating racks as obstacles except at
    /// the endpoints. Cached per `(origin, destination)` pair.
    fn spatial_path(&mut self, origin: Cell, goal: Cell) -> Option<Vec<Cell>> {
        if let Some(p) = self.cache.get(&(origin, goal)) {
            return Some(p.clone());
        }
        let m = &self.matrix;
        let mut parents: HashMap<Cell, Cell> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(origin);
        parents.insert(origin, origin);
        let mut found = false;
        while let Some(c) = queue.pop_front() {
            if c == goal {
                found = true;
                break;
            }
            for n in m.neighbors(c) {
                let traversable = m.is_free(n) || n == goal;
                if traversable && !parents.contains_key(&n) {
                    parents.insert(n, c);
                    queue.push_back(n);
                }
            }
        }
        if !found {
            return None;
        }
        let mut path = vec![goal];
        let mut c = goal;
        while c != origin {
            c = parents[&c];
            path.push(c);
        }
        path.reverse();
        self.stats.cache_fills += 1;
        self.cache.insert((origin, goal), path.clone());
        Some(path)
    }

    /// Walk a spatial path from time `t`, inserting waits whenever the next
    /// step is blocked. Returns `None` when the wait budget is exhausted or
    /// waiting in place becomes impossible.
    fn walk_with_waits(&self, path: &[Cell], t: Time) -> Option<Route> {
        let res = &self.commitments.reservations;
        // Find a free start instant.
        let mut start = t;
        let mut budget = self.config.max_total_wait;
        while !res.vertex_free(path[0], start) {
            start += 1;
            budget = budget.checked_sub(1)?;
        }
        let mut grids = vec![path[0]];
        let mut now = start;
        let mut i = 1;
        while i < path.len() {
            let cur = *grids.last().expect("non-empty");
            let next = path[i];
            if res.move_free(cur, next, now) {
                grids.push(next);
                i += 1;
            } else {
                // Wait in place — only legal if the current cell stays free.
                if !res.vertex_free(cur, now + 1) {
                    return None;
                }
                grids.push(cur);
                budget = budget.checked_sub(1)?;
            }
            now += 1;
        }
        Some(Route::new(start, grids))
    }
}

impl Planner for AcpPlanner {
    fn name(&self) -> &'static str {
        "ACP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let cached = self.spatial_path(req.origin, req.destination);
        let route = match cached {
            Some(path) => match self.walk_with_waits(&path, req.t) {
                Some(r) => {
                    self.stats.cache_hits += 1;
                    Some(r)
                }
                None => {
                    self.stats.fallbacks += 1;
                    let r = self.astar.plan(
                        &self.matrix,
                        &self.commitments.reservations,
                        None,
                        req.origin,
                        req.destination,
                        req.t,
                    );
                    self.search_peak_bytes =
                        self.search_peak_bytes.max(self.astar.stats.peak_bytes);
                    r
                }
            },
            None => None,
        };
        match route {
            Some(route) => {
                self.commitments.commit(req.id, route.clone());
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.commitments.retire_before(now);
        Vec::new()
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        self.commitments.withdraw(id).is_some()
    }

    fn memory_bytes(&self) -> usize {
        let cache: usize = self.cache.values().map(memory::vec_bytes).sum::<usize>()
            + memory::hashmap_bytes(&self.cache);
        // The paper's MC includes "runtime space consumption during
        // execution": the fallback-search high-water is part of the
        // footprint.
        self.commitments.memory_bytes() + cache + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::validate_routes;
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::QueryKind;

    #[test]
    fn cache_is_reused_across_requests() {
        let m = WarehouseMatrix::empty(6, 6);
        let mut acp = AcpPlanner::new(m, AcpConfig::default());
        let a = Cell::new(0, 0);
        let b = Cell::new(5, 5);
        acp.plan(&Request::new(0, 0, a, b, QueryKind::Pickup));
        acp.plan(&Request::new(1, 30, a, b, QueryKind::Pickup));
        assert_eq!(
            acp.stats.cache_fills, 1,
            "second request must reuse the path"
        );
        assert_eq!(acp.cache_entries(), 1);
        assert_eq!(acp.stats.cache_hits, 2);
    }

    #[test]
    fn waits_are_inserted_for_crossing_traffic() {
        let m = WarehouseMatrix::empty(5, 5);
        let mut acp = AcpPlanner::new(m, AcpConfig::default());
        let r1 = acp
            .plan(&Request::new(
                0,
                0,
                Cell::new(2, 0),
                Cell::new(2, 4),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r1");
        let r2 = acp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 2),
                Cell::new(4, 2),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r2");
        assert_eq!(validate_routes(&[r1, r2.clone()]), None);
        // The cached path is spatial-shortest; congestion shows up as waits.
        assert!(r2.duration() >= 4);
    }

    #[test]
    fn head_on_corridor_falls_back_to_astar() {
        let m = WarehouseMatrix::from_ascii(
            "......\n\
             ......",
        );
        let mut acp = AcpPlanner::new(
            m,
            AcpConfig {
                max_total_wait: 8,
                ..Default::default()
            },
        );
        let r1 = acp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(0, 5),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r1");
        // Head-on along row 0: greedy waiting can never resolve it; the
        // fallback must route around via row 1.
        let r2 = acp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 5),
                Cell::new(0, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r2");
        assert_eq!(validate_routes(&[r1, r2]), None);
        assert_eq!(acp.stats.fallbacks, 1);
    }

    #[test]
    fn dense_stream_is_collision_free() {
        let layout = LayoutConfig::small().generate();
        let mut acp = AcpPlanner::new(layout.matrix.clone(), AcpConfig::default());
        let mut routes = Vec::new();
        for req in generate_requests(&layout, 80, 4.0, 77) {
            if let PlanOutcome::Planned(r) = acp.plan(&req) {
                assert!(r.validate(&layout.matrix).is_ok());
                routes.push(r);
            }
        }
        assert!(routes.len() >= 78);
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn memory_includes_cache() {
        let m = WarehouseMatrix::empty(10, 10);
        let mut acp = AcpPlanner::new(m, AcpConfig::default());
        let before = acp.memory_bytes();
        for i in 0..10u16 {
            acp.plan(&Request::new(
                i as u64,
                0,
                Cell::new(0, i),
                Cell::new(9, 9 - i),
                QueryKind::Pickup,
            ));
        }
        assert!(acp.memory_bytes() > before);
        assert_eq!(acp.cache_entries(), 10);
    }
}
