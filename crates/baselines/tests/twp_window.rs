//! Window-consistency property suite for TWP (the RHCR invariant).
//!
//! The contract of windowed planning is not "no conflicts ever" — it is
//! that optimism stays strictly beyond the collision window: after every
//! `advance`, as long as no repair has failed, no two active routes may
//! conflict at any `t < r + window`, where `r` is the time of the most
//! recent repair round. Every active route was (re)planned against both
//! reservation layers up to at least that horizon, so an earlier conflict
//! means a booking was stolen, leaked, or never consulted — exactly the
//! bug class the two-layer reservation table exists to kill.
//!
//! Random request streams on the small layout probe the invariant across
//! arrival orders, windows and densities; a deterministic W-1 preset run
//! checks it at the paper's warehouse scale.

use carp_baselines::{TwpConfig, TwpPlanner};
use carp_spacetime::AStarConfig;
use carp_warehouse::collision::first_conflict;
use carp_warehouse::layout::{LayoutConfig, WarehousePreset};
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::types::Time;
use carp_warehouse::{Planner, Request};
use proptest::prelude::*;

/// Assert the invariant at one instant: every pair of active routes is
/// conflict-free before `horizon`.
fn assert_window_consistent(twp: &TwpPlanner, horizon: Time, now: Time) {
    let active: Vec<_> = twp.active().collect();
    for (i, (id_a, a)) in active.iter().enumerate() {
        for (id_b, b) in &active[i + 1..] {
            if let Some(c) = first_conflict(a, b) {
                assert!(
                    c.time >= horizon,
                    "routes {id_a} and {id_b} conflict at t={} < horizon {horizon} \
                     (now={now}): {c:?}",
                    c.time
                );
            }
        }
    }
}

/// Drive a request stream through the simulator protocol and check the
/// invariant after every step. Checks stop at the first failed repair:
/// from then on a route may legitimately keep its *old* (smaller) hard
/// horizon, and the residue is accounted as window debt instead.
fn drive_and_check(twp: &mut TwpPlanner, requests: &[Request], window: Time) {
    let horizon = requests.last().map_or(0, |r| r.t) + 2 * window;
    let mut next = 0usize;
    let mut last_round = 0;
    let mut rounds_seen = 0;
    for now in 0..=horizon {
        twp.advance(now);
        if twp.stats.repair_rounds > rounds_seen {
            rounds_seen = twp.stats.repair_rounds;
            last_round = now;
        }
        while next < requests.len() && requests[next].t <= now {
            twp.plan(&requests[next]);
            next += 1;
        }
        if twp.stats.failed_repairs == 0 {
            assert_window_consistent(twp, last_round + window, now);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_streams_stay_window_consistent(
        seed in 0u64..1_000_000,
        n in 8usize..20,
        rate_x10 in 5u32..20,
        half in 3u32..10,
    ) {
        let layout = LayoutConfig::small().generate();
        let requests = generate_requests(&layout, n, f64::from(rate_x10) / 10.0, seed);
        let window = 2 * half;
        let mut twp = TwpPlanner::new(
            layout.matrix,
            TwpConfig {
                window,
                period: half,
                astar: AStarConfig::default(),
            },
        );
        drive_and_check(&mut twp, &requests, window);
    }
}

/// The same invariant at the paper's smallest warehouse scale (W-1,
/// 233 × 104): a deterministic stream dense enough to force soft
/// co-bookings and several promote-on-slide rounds.
#[test]
fn w1_preset_stream_stays_window_consistent() {
    let layout = WarehousePreset::W1.generate();
    let requests = generate_requests(&layout, 24, 1.5, 104);
    let window = 24;
    let mut twp = TwpPlanner::new(
        layout.matrix,
        TwpConfig {
            window,
            period: 12,
            astar: AStarConfig::default(),
        },
    );
    drive_and_check(&mut twp, &requests, window);
    assert!(
        twp.stats.repair_rounds > 3,
        "stream must cross several slides to exercise promotion"
    );
    let metrics = twp.engine_metrics().expect("twp reports metrics");
    assert!(
        metrics.soft_bookings > 0,
        "W-1 stream too sparse to book any optimism — strengthen the stream"
    );
}
