//! Serde round-trips for the simulator's report types and `SimConfig`.

use carp_simenv::{DayReport, SimConfig, Snapshot};

fn sample_report() -> DayReport {
    DayReport {
        planner: "SRP",
        tasks: 120,
        completed: 118,
        planned_requests: 360,
        failed_requests: 2,
        makespan: 4032,
        planning_secs: 1.25,
        peak_memory_bytes: 9_000_000,
        snapshots: vec![
            Snapshot {
                progress: 0.5,
                sim_time: 2000,
                planning_secs: 0.6,
                memory_bytes: 7_500_000,
            },
            Snapshot {
                progress: 1.0,
                sim_time: 4032,
                planning_secs: 1.25,
                memory_bytes: 9_000_000,
            },
        ],
        audit_conflicts: 0,
        mean_task_latency: 33.4,
        throughput_per_hour: 105.0,
        engine_probe_parallelism: 3.2,
        retire_batch_size: 11.5,
        soft_bookings: 42,
        window_debt: 7,
        eval_batches: 61,
        eval_parallel_share: 0.75,
    }
}

#[test]
fn day_report_round_trips_through_json() {
    let report = sample_report();
    let json = serde_json::to_string(&report).unwrap();
    let back: DayReport = serde_json::from_str(&json).unwrap();
    // DayReport carries f64s and a Vec, so compare via re-serialization:
    // equal JSON ⇒ equal observable content.
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(back.planner, "SRP");
    assert_eq!(back.snapshots.len(), 2);
    assert_eq!(back.soft_bookings, 42);
    assert_eq!(back.window_debt, 7);
    assert_eq!(back.eval_batches, 61);
    assert!((back.eval_parallel_share - 0.75).abs() < 1e-12);
}

#[test]
fn snapshot_round_trips_through_json() {
    let snap = Snapshot {
        progress: 0.42,
        sim_time: 1234,
        planning_secs: 0.125,
        memory_bytes: 4096,
    };
    let json = serde_json::to_string(&snap).unwrap();
    let back: Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(back.sim_time, 1234);
    assert_eq!(back.memory_bytes, 4096);
}

#[test]
fn sim_config_round_trips_through_json() {
    let cfg = SimConfig {
        service_time: 9,
        retry_delay: 4,
        max_retries: 2,
        snapshot_tick: 0.05,
        audit: false,
        tenants: vec![carp_simenv::TenantDayProfile {
            tenant: "east".to_string(),
            preset: "W-2".to_string(),
            tasks: 120,
            horizon: 900,
            rate: 4.0,
            seed: 3,
        }],
    };
    let back = SimConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(cfg, back);
    assert_eq!(back.tenants[0].id(), "east");

    // A profile without an explicit tenant name answers to its preset.
    let cfg = SimConfig::from_json(r#"{"tenants": [{"preset": "W-3"}]}"#).unwrap();
    assert_eq!(cfg.tenants[0].id(), "W-3");
    assert_eq!(cfg.tenants[0].tasks, 200, "unset fields take defaults");
}

#[test]
fn sim_config_partial_json_fills_defaults() {
    let cfg = SimConfig::from_json(r#"{"service_time": 3, "max_retries": 9}"#).unwrap();
    let defaults = SimConfig::default();
    assert_eq!(cfg.service_time, 3);
    assert_eq!(cfg.max_retries, 9);
    assert_eq!(cfg.retry_delay, defaults.retry_delay);
    assert_eq!(cfg.snapshot_tick, defaults.snapshot_tick);
    assert_eq!(cfg.audit, defaults.audit);

    // An empty document is the pure default config.
    assert_eq!(SimConfig::from_json("{}").unwrap(), defaults);
}

#[test]
fn sim_config_rejects_unknown_fields() {
    let err = SimConfig::from_json(r#"{"service_tiem": 3}"#);
    assert!(err.is_err(), "typoed field must not be silently dropped");
}
