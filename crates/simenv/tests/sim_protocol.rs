//! Protocol-level tests of the test environment using scripted planners:
//! infeasible-retry handling, route revisions, task queueing when robots
//! run out, and failure accounting.

use carp_simenv::{SimConfig, Simulation};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::Time;

/// A planner that travels Manhattan-style ignoring all collisions — the
/// simplest possible "always plans" stub.
struct ManhattanStub {
    /// Refuse the first `refusals` calls (to exercise the retry path).
    refusals: usize,
    calls: usize,
    revisions: Vec<(RequestId, Route)>,
}

impl ManhattanStub {
    fn new(refusals: usize) -> Self {
        ManhattanStub {
            refusals,
            calls: 0,
            revisions: Vec::new(),
        }
    }

    fn manhattan_route(req: &Request) -> Route {
        let mut grids = vec![req.origin];
        let mut cur = req.origin;
        while cur.row != req.destination.row {
            cur.row = if cur.row < req.destination.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            grids.push(cur);
        }
        while cur.col != req.destination.col {
            cur.col = if cur.col < req.destination.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            grids.push(cur);
        }
        Route::new(req.t, grids)
    }
}

impl Planner for ManhattanStub {
    fn name(&self) -> &'static str {
        "stub"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        self.calls += 1;
        if self.calls <= self.refusals {
            return PlanOutcome::Infeasible;
        }
        PlanOutcome::Planned(Self::manhattan_route(req))
    }
    fn advance(&mut self, _now: Time) -> Vec<(RequestId, Route)> {
        core::mem::take(&mut self.revisions)
    }
    fn memory_bytes(&self) -> usize {
        64
    }
}

fn tiny_world() -> (carp_warehouse::layout::Layout, Vec<Task>) {
    let layout = LayoutConfig::small().generate();
    let tasks = generate_tasks(&layout, &DayProfile::new(300, 8), 3);
    (layout, tasks)
}

#[test]
fn retries_recover_from_transient_refusals() {
    let (layout, tasks) = tiny_world();
    // Refuse the first two planning calls; retries must absorb them.
    let stub = ManhattanStub::new(2);
    let (report, _) = Simulation::new(
        &layout,
        &tasks,
        stub,
        SimConfig {
            audit: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(
        report.completed, report.tasks,
        "retries should rescue refused requests"
    );
    assert_eq!(report.failed_requests, 0);
}

#[test]
fn permanent_refusal_is_counted_as_failure() {
    let (layout, tasks) = tiny_world();
    let stub = ManhattanStub::new(usize::MAX); // never plans
    let config = SimConfig {
        max_retries: 2,
        audit: false,
        ..SimConfig::default()
    };
    let (report, _) = Simulation::new(&layout, &tasks, stub, config).run();
    assert_eq!(report.completed, 0);
    assert!(report.failed_requests > 0);
    assert_eq!(report.makespan, 0, "nothing was ever planned");
}

#[test]
fn all_tasks_complete_with_single_robot() {
    // One robot forces full task queueing: every task waits for the robot.
    let mut cfg = LayoutConfig::small();
    cfg.robots = 1;
    let layout = cfg.generate();
    let tasks = generate_tasks(&layout, &DayProfile::new(100, 6), 8);
    let stub = ManhattanStub::new(0);
    let (report, _) = Simulation::new(
        &layout,
        &tasks,
        stub,
        SimConfig {
            audit: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(
        report.completed, 6,
        "the queue must drain through the single robot"
    );
    // With one robot the makespan is far beyond the arrival horizon.
    assert!(report.makespan > 100);
}

#[test]
fn latency_and_throughput_are_recorded() {
    let (layout, tasks) = tiny_world();
    let stub = ManhattanStub::new(0);
    let (report, _) = Simulation::new(
        &layout,
        &tasks,
        stub,
        SimConfig {
            audit: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(report.mean_task_latency > 0.0);
    assert!(report.throughput_per_hour > 0.0);
    let csv = report.snapshots_csv();
    assert!(csv.starts_with("progress,sim_time,planning_secs,memory_bytes"));
    assert_eq!(csv.lines().count(), report.snapshots.len() + 1);
}

/// A planner whose advance() revises its latest route to end later —
/// exercises the simulator's stale-completion handling.
struct RevisingStub {
    last: Option<(RequestId, Request)>,
    revised: bool,
}

impl Planner for RevisingStub {
    fn name(&self) -> &'static str {
        "revising-stub"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        self.last = Some((req.id, *req));
        PlanOutcome::Planned(ManhattanStub::manhattan_route(req))
    }
    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        if self.revised {
            return Vec::new();
        }
        if let Some((id, req)) = self.last {
            if now > req.t {
                self.revised = true;
                // Same trajectory, but dawdle at the origin for 3 steps.
                let base = ManhattanStub::manhattan_route(&req);
                let mut grids = vec![req.origin; 3];
                grids.extend(base.grids);
                return vec![(id, Route::new(req.t, grids))];
            }
        }
        Vec::new()
    }
    fn memory_bytes(&self) -> usize {
        32
    }
}

#[test]
fn revisions_defer_leg_completion() {
    let mut cfg = LayoutConfig::small();
    cfg.robots = 1;
    let layout = cfg.generate();
    // A single task so the revision cleanly applies to its pickup leg.
    let tasks = vec![Task {
        id: 0,
        arrival: 0,
        rack: layout.rack_cells[0],
        picker: layout.pickers[0],
    }];
    let stub = RevisingStub {
        last: None,
        revised: false,
    };
    let (report, _) = Simulation::new(
        &layout,
        &tasks,
        stub,
        SimConfig {
            audit: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(report.completed, 1);
    // The revision added 3 waiting steps to the first leg, visible in the
    // makespan relative to an unrevised run.
    let stub = ManhattanStub::new(0);
    let (unrevised, _) = Simulation::new(
        &layout,
        &tasks,
        stub,
        SimConfig {
            audit: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(report.makespan, unrevised.makespan + 3);
}
