//! The test environment driving all five planners over the same small day
//! stream — the miniature version of the paper's whole evaluation.

use carp_baselines::{
    AcpConfig, AcpPlanner, RpConfig, RpPlanner, SapPlanner, TwpConfig, TwpPlanner,
};
use carp_simenv::{SimConfig, Simulation};
use carp_spacetime::AStarConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig};
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};

fn small_day() -> (Layout, Vec<Task>) {
    let layout = LayoutConfig::small().generate();
    let tasks = generate_tasks(&layout, &DayProfile::new(600, 40), 11);
    (layout, tasks)
}

fn check_report(report: &carp_simenv::DayReport, strict_audit: bool) {
    assert!(
        report.completed as f64 >= report.tasks as f64 * 0.9,
        "{}: only {}/{} tasks completed",
        report.planner,
        report.completed,
        report.tasks
    );
    if strict_audit {
        assert_eq!(
            report.audit_conflicts, 0,
            "{}: audit found conflicts",
            report.planner
        );
    }
    assert!(report.makespan > 0);
    assert!(!report.snapshots.is_empty());
    assert!(report.planning_secs > 0.0);
    assert!(report.peak_memory_bytes > 0);
    // Snapshot TC series is monotone.
    for w in report.snapshots.windows(2) {
        assert!(w[0].planning_secs <= w[1].planning_secs);
        assert!(w[0].progress < w[1].progress);
    }
}

#[test]
fn srp_full_day() {
    let (layout, tasks) = small_day();
    let planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let (report, planner) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
    check_report(&report, true);
    assert!(planner.stats.planned > 0);
}

#[test]
fn sap_full_day() {
    let (layout, tasks) = small_day();
    let planner = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
    let (report, _) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
    check_report(&report, true);
}

#[test]
fn rp_full_day() {
    let (layout, tasks) = small_day();
    let planner = RpPlanner::new(layout.matrix.clone(), RpConfig::default());
    let (report, _) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
    check_report(&report, true);
}

#[test]
fn twp_full_day() {
    let (layout, tasks) = small_day();
    let planner = TwpPlanner::new(layout.matrix.clone(), TwpConfig::default());
    let (report, _) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
    // Windowed planning may leave residual conflicts when repairs fail;
    // require a (near-)clean audit rather than perfection.
    check_report(&report, false);
    assert!(
        report.audit_conflicts <= 2,
        "TWP leaked {} conflicts",
        report.audit_conflicts
    );
}

#[test]
fn acp_full_day() {
    let (layout, tasks) = small_day();
    let planner = AcpPlanner::new(layout.matrix.clone(), AcpConfig::default());
    let (report, planner) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
    check_report(&report, true);
    assert!(planner.stats.cache_hits > 0);
}

#[test]
fn planners_agree_on_task_volume_and_comparable_makespan() {
    let (layout, tasks) = small_day();
    let (srp_report, _) = Simulation::new(
        &layout,
        &tasks,
        SrpPlanner::new(layout.matrix.clone(), SrpConfig::default()),
        SimConfig::default(),
    )
    .run();
    let (sap_report, _) = Simulation::new(
        &layout,
        &tasks,
        SapPlanner::new(layout.matrix.clone(), AStarConfig::default()),
        SimConfig::default(),
    )
    .run();
    assert_eq!(srp_report.tasks, sap_report.tasks);
    // Effectiveness (Table III): SRP's makespan should be within a modest
    // factor of the grid-optimal prioritized baseline.
    let ratio = srp_report.makespan as f64 / sap_report.makespan as f64;
    assert!(
        (0.6..1.8).contains(&ratio),
        "SRP/SAP makespan ratio {ratio:.2} out of band ({} vs {})",
        srp_report.makespan,
        sap_report.makespan
    );
}

#[test]
fn simulation_is_deterministic() {
    let (layout, tasks) = small_day();
    let run = || {
        let planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        let (report, _) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
        (report.makespan, report.completed, report.planned_requests)
    };
    assert_eq!(run(), run());
}
