//! A TWP day at the paper's W-1 warehouse scale, audited.
//!
//! This is the end-to-end gate for the two-layer reservation table: a full
//! simulated day must finish with a clean collision audit *and* zero
//! hard-layer debt — every optimistic beyond-window booking was promoted
//! into the hard layer by a repair round before it came due. Nonzero
//! `window_debt` means a slide left unpromoted optimism inside the window
//! (the steal-then-release failure mode's visible residue), and CI treats
//! it as a hard failure. Run under `--features strict-audit` in release
//! (the CI perf job does) for the full cross-checked audit.

use carp_baselines::{TwpConfig, TwpPlanner};
use carp_simenv::{SimConfig, Simulation};
use carp_warehouse::layout::WarehousePreset;
use carp_warehouse::tasks::{generate_tasks, DayProfile};

#[test]
fn twp_w1_day_has_clean_audit_and_zero_window_debt() {
    let layout = WarehousePreset::W1.generate();
    // A modest stream: enough traffic for soft co-bookings and dozens of
    // promote-on-slide rounds, small enough for a debug-mode run.
    let tasks = generate_tasks(&layout, &DayProfile::new(900, 48), 104);
    let planner = TwpPlanner::new(layout.matrix.clone(), TwpConfig::default());
    let (report, planner) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();

    assert_eq!(
        report.audit_conflicts, 0,
        "TWP leaked collisions into the audited execution"
    );
    assert_eq!(
        report.window_debt, 0,
        "repair rounds left unpromoted soft bookings inside the window"
    );
    assert!(
        report.soft_bookings > 0,
        "a W-1 day must exercise beyond-window optimism"
    );
    assert!(
        planner.stats.repair_rounds > 10,
        "day too short to exercise the slide schedule"
    );
    assert!(
        report.completed as f64 >= report.tasks as f64 * 0.9,
        "only {}/{} tasks completed",
        report.completed,
        report.tasks
    );
}
