//! Replayable repros for audit failures.
//!
//! When the online auditor ([`carp_warehouse::collision::IncrementalAuditor`])
//! refuses a route, the interesting question is *where the bad segment came
//! from*. A [`ReproBundle`] freezes everything needed to answer it offline:
//! the layout configuration (layout generation is deterministic), the
//! request stream prefix up to the offending plan, the conflict itself, the
//! provenance of both routes involved (which planner path produced them),
//! and an ASCII space-time timeline of the two trajectories. The bundle
//! serializes to JSON so a failing CI run's log is a complete, replayable
//! test case.

use carp_warehouse::collision::AuditConflict;
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::render::conflict_timeline;
use carp_warehouse::request::Request;
use carp_warehouse::route::Route;
use serde::{Deserialize, Serialize};

/// A minimal, self-contained JSON repro of one audit failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproBundle {
    /// The layout configuration (regenerates the exact warehouse).
    pub layout: LayoutConfig,
    /// Every request submitted, in order, up to and including the one whose
    /// committed route failed the audit.
    pub requests: Vec<Request>,
    /// Human-readable description of the detected conflict.
    pub conflict: String,
    /// Provenance lines for the routes involved (planner path, strip chain,
    /// crossings) — empty strings when the planner records none.
    pub provenance: Vec<String>,
    /// ASCII space-time timeline of the two conflicting routes
    /// ([`carp_warehouse::render::conflict_timeline`]).
    pub timeline: String,
}

impl ReproBundle {
    /// Assemble a bundle from the audit failure's raw parts.
    pub fn new(
        layout: LayoutConfig,
        requests: Vec<Request>,
        conflict: &AuditConflict,
        existing: &Route,
        incoming: &Route,
        provenance: Vec<String>,
    ) -> Self {
        ReproBundle {
            layout,
            requests,
            conflict: conflict.to_string(),
            provenance,
            timeline: conflict_timeline(existing, incoming),
        }
    }

    /// Serialize to pretty JSON (infallible for this all-integer payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro bundle serializes")
    }

    /// Parse a bundle back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::{AuditConflict, ConflictKind, IncrementalAuditor};
    use carp_warehouse::request::QueryKind;
    use carp_warehouse::types::Cell;

    #[test]
    fn bundle_roundtrips_through_json() {
        let layout = LayoutConfig::small();
        let a = Route::new(0, vec![Cell::new(0, 0), Cell::new(0, 1)]);
        let b = Route::new(0, vec![Cell::new(0, 1), Cell::new(0, 0)]);
        let mut aud = IncrementalAuditor::new();
        aud.commit(1, &a).expect("first route commits");
        let conflict = aud.commit(2, &b).expect_err("swap refused");
        assert_eq!(conflict.kind, ConflictKind::Swap);
        let requests = vec![
            Request::new(1, 0, Cell::new(0, 0), Cell::new(0, 1), QueryKind::Pickup),
            Request::new(2, 0, Cell::new(0, 1), Cell::new(0, 0), QueryKind::Return),
        ];
        let bundle = ReproBundle::new(
            layout.clone(),
            requests,
            &conflict,
            &a,
            &b,
            vec![
                "existing: direct strip search".into(),
                "incoming: grid A* fallback".into(),
            ],
        );
        let json = bundle.to_json();
        assert!(json.contains("Swap"), "{json}");
        let back = ReproBundle::from_json(&json).expect("parses");
        assert_eq!(back.layout, layout);
        assert_eq!(back.requests.len(), 2);
        assert_eq!(back.requests[1].kind, QueryKind::Return);
        assert_eq!(back.conflict, bundle.conflict);
        assert_eq!(back.provenance, bundle.provenance);
        assert!(back.timeline.contains("row(t)"));
    }

    #[test]
    fn conflict_description_names_both_requests() {
        let c = AuditConflict {
            kind: ConflictKind::Vertex,
            time: 7,
            cell: Cell::new(3, 4),
            existing: 11,
            incoming: 12,
        };
        let s = c.to_string();
        assert!(
            s.contains("t=7") && s.contains("11") && s.contains("12"),
            "{s}"
        );
    }
}
