//! The online test environment (§VIII-A, Fig. 15).
//!
//! The simulator replays a day of delivery tasks against one planner. Each
//! task decomposes into the three-leg workflow of the paper: *pickup*
//! (robot → rack), *transmission* (rack → picker) and *return*
//! (picker → rack home). Tasks are assigned to the nearest free robot on
//! arrival (or queued until one frees up); each leg's planning request is
//! submitted when the previous leg completes.
//!
//! The environment measures TC as the wall-clock time spent inside the
//! planner, samples MC at progress ticks, computes OG as the makespan of
//! all planned routes, and — unlike the paper's testbed — *audits* every
//! final route set against the ground-truth conflict semantics of
//! Definition 3.

use crate::audit::ReproBundle;
use crate::metrics::{DayReport, Recorder};
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::Layout;
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::Task;
use carp_warehouse::types::{Cell, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// Simulation parameters.
///
/// Serializes to/from JSON so the simulator and the `carp-service` CLI
/// share one on-disk config format; every field carries a default, so a
/// partial JSON object (`{"service_time": 2}`) is a valid config (the
/// hand-written `Deserialize` below fills the rest — the vendored serde
/// has no `#[serde(default)]`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimConfig {
    /// Service time between legs (lifting a rack, picking items), in steps.
    pub service_time: Time,
    /// Delay before retrying an infeasible planning request.
    pub retry_delay: Time,
    /// Retries before a request is abandoned (counts as failed).
    pub max_retries: u32,
    /// Progress granularity of TC/MC snapshots (0.02 = every 2%, as in the
    /// paper's snapshot comparison).
    pub snapshot_tick: f64,
    /// Audit all final routes against the ground-truth validator.
    pub audit: bool,
    /// Tenant day-profiles for multi-tenant daemon runs: each entry is one
    /// warehouse's day, served concurrently by `carp-service` under its
    /// own tenant id. Empty (the default) means single-tenant runs driven
    /// by CLI flags.
    pub tenants: Vec<TenantDayProfile>,
}

/// One tenant's day in a multi-tenant `carp-service` run: which warehouse
/// preset it plans over and how its task stream is generated.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantDayProfile {
    /// Tenant id on the daemon (defaults to the preset name when empty).
    pub tenant: String,
    /// Warehouse preset ("W-1" | "W-2" | "W-3").
    pub preset: String,
    /// Tasks in the tenant's day.
    pub tasks: u32,
    /// Day horizon in sim-steps.
    pub horizon: Time,
    /// Arrival-rate multiplier the day is compressed by.
    pub rate: f64,
    /// Task-stream RNG seed.
    pub seed: u64,
}

impl TenantDayProfile {
    /// The id the tenant registers under: the explicit `tenant` name, or
    /// the preset when no name was given.
    pub fn id(&self) -> &str {
        if self.tenant.is_empty() {
            &self.preset
        } else {
            &self.tenant
        }
    }
}

impl Default for TenantDayProfile {
    fn default() -> Self {
        TenantDayProfile {
            tenant: String::new(),
            preset: "W-1".to_string(),
            tasks: 200,
            horizon: 2000,
            rate: 1.0,
            seed: 7,
        }
    }
}

impl Deserialize for TenantDayProfile {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "TenantDayProfile"))?;
        let mut p = TenantDayProfile::default();
        for (key, val) in map {
            match key.as_str() {
                "tenant" => p.tenant = Deserialize::from_value(val)?,
                "preset" => p.preset = Deserialize::from_value(val)?,
                "tasks" => p.tasks = Deserialize::from_value(val)?,
                "horizon" => p.horizon = Deserialize::from_value(val)?,
                "rate" => p.rate = Deserialize::from_value(val)?,
                "seed" => p.seed = Deserialize::from_value(val)?,
                other => {
                    return Err(serde::Error::custom(format!(
                        "unknown TenantDayProfile field `{other}`"
                    )))
                }
            }
        }
        Ok(p)
    }
}

impl Deserialize for SimConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "SimConfig"))?;
        let mut cfg = SimConfig::default();
        for (key, val) in map {
            match key.as_str() {
                "service_time" => cfg.service_time = Deserialize::from_value(val)?,
                "retry_delay" => cfg.retry_delay = Deserialize::from_value(val)?,
                "max_retries" => cfg.max_retries = Deserialize::from_value(val)?,
                "snapshot_tick" => cfg.snapshot_tick = Deserialize::from_value(val)?,
                "audit" => cfg.audit = Deserialize::from_value(val)?,
                "tenants" => cfg.tenants = Deserialize::from_value(val)?,
                other => {
                    return Err(serde::Error::custom(format!(
                        "unknown SimConfig field `{other}`"
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

impl SimConfig {
    /// Parse a config from JSON; missing fields take their defaults.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            service_time: 1,
            retry_delay: 4,
            max_retries: 16,
            snapshot_tick: 0.02,
            audit: true,
            tenants: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrive {
        task: usize,
    },
    LegDone {
        task: usize,
        robot: usize,
        kind: QueryKind,
        expected_end: Time,
    },
    Retry {
        task: usize,
        robot: usize,
        kind: QueryKind,
        attempt: u32,
    },
    /// Planner-requested wake-up ([`Planner::next_wakeup`]): gives windowed
    /// planners their repair cadence even when no task event falls due —
    /// the `advance` at the top of the event loop is the whole point.
    Wake,
}

/// In-flight bookkeeping per robot.
#[derive(Debug, Clone)]
struct Robot {
    pos: Cell,
    busy: bool,
}

/// The day simulator.
pub struct Simulation<'a, P: Planner> {
    layout: &'a Layout,
    tasks: &'a [Task],
    planner: P,
    config: SimConfig,
}

impl<'a, P: Planner> Simulation<'a, P> {
    /// Create a simulation of `tasks` over `layout` driven by `planner`.
    pub fn new(layout: &'a Layout, tasks: &'a [Task], planner: P, config: SimConfig) -> Self {
        Simulation {
            layout,
            tasks,
            planner,
            config,
        }
    }

    /// Run the full day and return the metric report plus the planner (for
    /// inspecting planner-specific stats afterwards).
    pub fn run(mut self) -> (DayReport, P) {
        let mut recorder = Recorder::new(self.tasks.len(), self.config.snapshot_tick);
        let mut robots: Vec<Robot> = self
            .layout
            .robot_spawns
            .iter()
            .map(|&pos| Robot { pos, busy: false })
            .collect();
        assert!(!robots.is_empty(), "layout has no robots");

        // Event queue ordered by (time, seq) for determinism.
        let mut events: BinaryHeap<core::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
        let mut payloads: HashMap<u64, Event> = HashMap::new();
        let mut seq = 0u64;
        let push = |events: &mut BinaryHeap<core::cmp::Reverse<(Time, u64)>>,
                    payloads: &mut HashMap<u64, Event>,
                    seq: &mut u64,
                    t: Time,
                    e: Event| {
            events.push(core::cmp::Reverse((t, *seq)));
            payloads.insert(*seq, e);
            *seq += 1;
        };
        for (i, task) in self.tasks.iter().enumerate() {
            push(
                &mut events,
                &mut payloads,
                &mut seq,
                task.arrival,
                Event::Arrive { task: i },
            );
        }

        // Waiting tasks (no free robot yet) and in-flight request tracking.
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut next_request_id: RequestId = 0;
        // Final route per request id (revisions overwrite).
        let mut final_routes: HashMap<RequestId, Route> = HashMap::new();
        // Request id -> (task, robot, kind) for revision re-scheduling.
        let mut req_meta: HashMap<RequestId, (usize, usize, QueryKind)> = HashMap::new();
        // Active route end per (task, kind), updated by revisions.
        let mut active_end: HashMap<(usize, QueryKind), Time> = HashMap::new();
        let mut planned_requests = 0usize;
        let mut failed_requests = 0usize;
        let mut makespan: Time = 0;
        // Online audit state: mirrors the planner's committed routes and
        // refuses conflicting commits the moment they happen, catching
        // transient conflicts that a post-hoc batch validation of the
        // *final* (possibly revised) routes would miss.
        let mut auditor = if self.config.audit {
            Some(IncrementalAuditor::new())
        } else {
            None
        };
        let mut request_log: Vec<Request> = Vec::new();
        let mut online_conflicts = 0usize;
        let mut repro_emitted = false;
        // Commits the auditor refused whose verdict is pending. A refusal is
        // judged only once its conflict *comes due*: planners repair
        // deferred conflicts before they happen — RP revises the conflicting
        // peers on the very next advance(), while windowed planners (TWP)
        // legally carry a beyond-window conflict across several repair
        // rounds. Ground truth (Definition 3) is whether the routes still
        // conflict when simulated time reaches the conflict, not whether
        // the next revision batch already fixed it.
        let mut deferred: Vec<(RequestId, Route)> = Vec::new();
        // Wake-ups already in the queue (dedup: the planner reports the
        // same `next_wakeup` until it fires).
        let mut scheduled_wakes: std::collections::HashSet<Time> = std::collections::HashSet::new();

        macro_rules! report_conflict {
            ($aud:expr, $c:expr, $incoming:expr) => {{
                online_conflicts += 1;
                if !repro_emitted {
                    repro_emitted = true;
                    let provenance = vec![
                        format!(
                            "existing request {}: {}",
                            $c.existing,
                            self.planner
                                .provenance($c.existing)
                                .unwrap_or_else(|| "unrecorded".into())
                        ),
                        format!(
                            "incoming request {}: {}",
                            $c.incoming,
                            self.planner
                                .provenance($c.incoming)
                                .unwrap_or_else(|| "unrecorded".into())
                        ),
                    ];
                    if let Some(existing) = $aud.route($c.existing).cloned() {
                        let bundle = ReproBundle::new(
                            self.layout.config.clone(),
                            request_log.clone(),
                            &$c,
                            &existing,
                            $incoming,
                            provenance,
                        );
                        eprintln!("[audit] {}", $c);
                        eprintln!("[audit] {}", bundle.provenance.join("\n[audit] "));
                        eprintln!("[audit] timeline:\n{}", bundle.timeline);
                        eprintln!("[audit] replayable repro:\n{}", bundle.to_json());
                    }
                }
            }};
        }

        macro_rules! plan_leg {
            ($now:expr, $task:expr, $robot:expr, $kind:expr, $attempt:expr) => {{
                let t = self.tasks[$task];
                let (origin, destination) = match $kind {
                    QueryKind::Pickup => (robots[$robot].pos, t.rack),
                    QueryKind::Transmission => (t.rack, t.picker),
                    QueryKind::Return => (t.picker, t.rack),
                };
                let id = next_request_id;
                next_request_id += 1;
                let req = Request::new(id, $now, origin, destination, $kind);
                if auditor.is_some() {
                    request_log.push(req);
                }
                let started = Instant::now();
                let outcome = self.planner.plan(&req);
                recorder.add_planning(started.elapsed());
                match outcome {
                    PlanOutcome::Planned(route) => {
                        planned_requests += 1;
                        makespan = makespan.max(route.finish_exclusive());
                        let end = route.end_time();
                        if let Some(aud) = auditor.as_mut() {
                            match aud.commit(id, &route) {
                                Ok(()) => {}
                                Err(c) if $now >= c.time => {
                                    report_conflict!(aud, c, &route);
                                }
                                Err(_) => deferred.push((id, route.clone())),
                            }
                        }
                        final_routes.insert(id, route);
                        req_meta.insert(id, ($task, $robot, $kind));
                        active_end.insert(($task, $kind), end);
                        push(
                            &mut events,
                            &mut payloads,
                            &mut seq,
                            end,
                            Event::LegDone {
                                task: $task,
                                robot: $robot,
                                kind: $kind,
                                expected_end: end,
                            },
                        );
                    }
                    PlanOutcome::Infeasible => {
                        if $attempt < self.config.max_retries {
                            push(
                                &mut events,
                                &mut payloads,
                                &mut seq,
                                $now + self.config.retry_delay,
                                Event::Retry {
                                    task: $task,
                                    robot: $robot,
                                    kind: $kind,
                                    attempt: $attempt + 1,
                                },
                            );
                        } else {
                            failed_requests += 1;
                            // Give up on the task; free the robot.
                            robots[$robot].busy = false;
                        }
                    }
                }
            }};
        }

        let mut last_advance: Option<Time> = None;
        while let Some(core::cmp::Reverse((now, id))) = events.pop() {
            let event = payloads.remove(&id).expect("payload");
            // Let the planner retire state and deliver revisions once per
            // timestamp.
            if last_advance != Some(now) {
                last_advance = Some(now);
                let started = Instant::now();
                let revisions = self.planner.advance(now);
                recorder.add_planning(started.elapsed());
                // Revisions land as one atomic batch: cancel every revised
                // route before recommitting any, otherwise a revised route
                // would be checked against a peer's *stale* plan and report
                // a conflict that never existed.
                if let Some(aud) = auditor.as_mut() {
                    for (rid, _) in &revisions {
                        if req_meta.contains_key(rid) {
                            aud.cancel(*rid);
                        }
                    }
                }
                for (rid, route) in revisions {
                    if let Some(&(task, robot, kind)) = req_meta.get(&rid) {
                        makespan = makespan.max(route.finish_exclusive());
                        let end = route.end_time();
                        if let Some(aud) = auditor.as_mut() {
                            // The revision supersedes any pending refusal.
                            deferred.retain(|(d, _)| *d != rid);
                            if let Err(c) = aud.commit(rid, &route) {
                                if now >= c.time {
                                    report_conflict!(aud, c, &route);
                                } else {
                                    deferred.push((rid, route.clone()));
                                }
                            }
                        }
                        if active_end.get(&(task, kind)) != Some(&end) {
                            active_end.insert((task, kind), end);
                            push(
                                &mut events,
                                &mut payloads,
                                &mut seq,
                                end,
                                Event::LegDone {
                                    task,
                                    robot,
                                    kind,
                                    expected_end: end,
                                },
                            );
                        }
                        final_routes.insert(rid, route);
                    }
                }
                // With the revision batch applied, retry pending refusals.
                // A commit that now passes was repaired in time; one still
                // refused is judged only when its conflict is due — a
                // conflict that is still ahead of `now` may yet be repaired
                // by a later round, so it stays pending.
                if let Some(aud) = auditor.as_mut() {
                    for (rid, route) in core::mem::take(&mut deferred) {
                        if aud.route(rid).is_some() {
                            continue; // a revision superseded the refused plan
                        }
                        match aud.commit(rid, &route) {
                            Ok(()) => {}
                            Err(c) if now >= c.time => {
                                report_conflict!(aud, c, &route);
                            }
                            Err(_) => deferred.push((rid, route)),
                        }
                    }
                }
                // Under `strict-audit`, cross-check the online verdict
                // against the ground-truth batch checker on every advance:
                // the incremental auditor only ever accepts compatible
                // commits, so a batch validation of its active set must
                // find nothing. A hit means the auditor's occupancy
                // bookkeeping diverged from Definition 3 — a bug in the
                // audit layer itself, worth a hard stop.
                #[cfg(feature = "strict-audit")]
                if let Some(aud) = auditor.as_ref() {
                    let active: Vec<Route> = aud.routes().map(|(_, r)| r.clone()).collect();
                    if let Some(c) = validate_routes(&active) {
                        panic!(
                            "strict-audit: online auditor accepted a set the \
                             batch validator rejects at t={now}: {c:?}"
                        );
                    }
                }
                // Honor the planner's time-driven duties (e.g. TWP's repair
                // cadence): the queue is event-driven, so without an explicit
                // wake-up a repair round would wait for the next task event.
                if let Some(wake) = self.planner.next_wakeup() {
                    if wake > now && scheduled_wakes.insert(wake) {
                        push(&mut events, &mut payloads, &mut seq, wake, Event::Wake);
                    }
                }
            }

            match event {
                Event::Wake => {
                    scheduled_wakes.remove(&now);
                }
                Event::Arrive { task } => {
                    match self.nearest_free_robot(&robots, self.tasks[task].rack) {
                        Some(r) => {
                            robots[r].busy = true;
                            plan_leg!(now, task, r, QueryKind::Pickup, 0);
                        }
                        None => waiting.push_back(task),
                    }
                }
                Event::Retry {
                    task,
                    robot,
                    kind,
                    attempt,
                } => {
                    plan_leg!(now, task, robot, kind, attempt);
                }
                Event::LegDone {
                    task,
                    robot,
                    kind,
                    expected_end,
                } => {
                    // Stale completion (route was revised): ignore.
                    if active_end.get(&(task, kind)) != Some(&expected_end) {
                        continue;
                    }
                    active_end.remove(&(task, kind));
                    let t = self.tasks[task];
                    match kind {
                        QueryKind::Pickup => {
                            robots[robot].pos = t.rack;
                            plan_leg!(
                                now + self.config.service_time,
                                task,
                                robot,
                                QueryKind::Transmission,
                                0
                            );
                        }
                        QueryKind::Transmission => {
                            robots[robot].pos = t.picker;
                            plan_leg!(
                                now + self.config.service_time,
                                task,
                                robot,
                                QueryKind::Return,
                                0
                            );
                        }
                        QueryKind::Return => {
                            robots[robot].pos = t.rack;
                            robots[robot].busy = false;
                            recorder.task_completed_at(now, t.arrival, self.planner.memory_bytes());
                            // A robot freed: serve the queue.
                            if let Some(next_task) = waiting.pop_front() {
                                if let Some(r) =
                                    self.nearest_free_robot(&robots, self.tasks[next_task].rack)
                                {
                                    robots[r].busy = true;
                                    plan_leg!(now, next_task, r, QueryKind::Pickup, 0);
                                } else {
                                    waiting.push_front(next_task);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Refusals still pending after the last event have no more revisions
        // coming: judge them now.
        if let Some(aud) = auditor.as_mut() {
            for (rid, route) in core::mem::take(&mut deferred) {
                if aud.route(rid).is_some() {
                    continue;
                }
                if let Err(c) = aud.commit(rid, &route) {
                    report_conflict!(aud, c, &route);
                }
            }
        }

        let audit_conflicts = if self.config.audit {
            let routes: Vec<Route> = final_routes.values().cloned().collect();
            match validate_routes(&routes) {
                // The batch pass only sees final (post-revision) routes; the
                // online count additionally covers transient conflicts that a
                // later revision papered over, so report whichever is worse.
                None => online_conflicts,
                Some(_) => count_conflicts(&routes).max(online_conflicts),
            }
        } else {
            0
        };

        let mut report = recorder.finish(
            self.planner.name(),
            makespan,
            planned_requests,
            failed_requests,
            audit_conflicts,
        );
        if let Some(m) = self.planner.engine_metrics() {
            report.engine_probe_parallelism = m.probe_parallelism;
            report.retire_batch_size = m.retire_batch_size;
            report.soft_bookings = m.soft_bookings;
            report.window_debt = m.window_debt;
            report.eval_batches = m.eval_batches;
            report.eval_parallel_share = m.eval_parallel_share;
        }
        (report, self.planner)
    }

    fn nearest_free_robot(&self, robots: &[Robot], target: Cell) -> Option<usize> {
        robots
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.busy)
            .min_by_key(|(_, r)| r.pos.manhattan(target))
            .map(|(i, _)| i)
    }
}

/// Count conflicting occupancy events (diagnostic for the audit): the
/// number of `(cell, time)` duplications plus swapped motions, in one
/// linear pass over the total occupancy.
fn count_conflicts(routes: &[Route]) -> usize {
    use std::collections::HashMap as Map;
    let mut cells: Map<(Cell, Time), u32> = Map::new();
    let mut motions: Map<(Cell, Cell, Time), u32> = Map::new();
    let mut n = 0usize;
    for r in routes {
        for (t, c) in r.occupancy() {
            n += *cells.entry((c, t)).and_modify(|k| *k += 1).or_insert(1) as usize - 1;
        }
        for (k, w) in r.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let t = r.start + k as Time;
            n += motions.get(&(w[1], w[0], t)).copied().unwrap_or(0) as usize;
            *motions.entry((w[0], w[1], t)).or_insert(0) += 1;
        }
    }
    n
}
