//! Online test environment for CARP planners (§VIII-A, Fig. 15).
//!
//! The environment "simulates the emergence of delivery tasks, sends the
//! task information to the route planning algorithm, … assigns those
//! planned routes to robots for execution \[and\] records all our metrics
//! for comparison". [`sim::Simulation`] is that loop; [`metrics`] holds the
//! OG/TC/MC recorder and the per-day report used by every figure of the
//! evaluation (Figs. 16–21, Table III).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod metrics;
pub mod sim;

pub use audit::ReproBundle;
pub use metrics::{DayReport, Recorder, Snapshot};
pub use sim::{SimConfig, Simulation, TenantDayProfile};
