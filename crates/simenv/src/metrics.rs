//! Metric recording for the test environment (§VIII-A).
//!
//! Three metrics, as in the paper:
//!
//! * **OG** (optimization goal) — the makespan of Eq. (1), the time the
//!   last route finishes;
//! * **TC** (time consumption) — cumulative wall-clock time spent inside
//!   the planner across all rounds;
//! * **MC** (memory consumption) — live bytes of the planner's data
//!   structures, sampled as the day progresses.
//!
//! "Progress is the ratio between the finished tasks and all tasks of the
//! day" — snapshots are taken at fixed progress ticks so the TC/MC series
//! can be plotted exactly like Figs. 16–21.

use carp_warehouse::types::Time;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One progress snapshot of the running day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Progress in [0, 1]: finished tasks / all tasks.
    pub progress: f64,
    /// Simulated time at the snapshot.
    pub sim_time: Time,
    /// Cumulative planner wall-clock seconds so far (TC).
    pub planning_secs: f64,
    /// Planner live memory in bytes (MC).
    pub memory_bytes: usize,
}

/// Complete result of simulating one day with one planner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayReport {
    /// Planner display name.
    pub planner: &'static str,
    /// Number of tasks in the stream.
    pub tasks: usize,
    /// Tasks fully completed (all three legs).
    pub completed: usize,
    /// Planning requests answered.
    pub planned_requests: usize,
    /// Requests that remained infeasible after retries.
    pub failed_requests: usize,
    /// Makespan (OG): the time the last route finishes, `max st_r + |G_r|`.
    pub makespan: Time,
    /// Total planner wall-clock seconds (TC).
    pub planning_secs: f64,
    /// Peak of the sampled planner memory (MC).
    pub peak_memory_bytes: usize,
    /// Progress snapshots (TC/MC series for Figs. 16–21).
    pub snapshots: Vec<Snapshot>,
    /// Conflicts found by the ground-truth audit of all final routes
    /// (0 for every sound planner; windowed planners may leak if repairs
    /// fail).
    pub audit_conflicts: usize,
    /// Mean task latency in simulated seconds (completion − arrival),
    /// over completed tasks.
    pub mean_task_latency: f64,
    /// Completed tasks per simulated hour.
    pub throughput_per_hour: f64,
    /// Mean partition fan-out per batched collision probe of the planner's
    /// sharded store engine (1.0 = fully serial; 0.0 when the planner has
    /// no engine or issued no batches).
    pub engine_probe_parallelism: f64,
    /// Mean segments retired per batched engine removal (0.0 when the
    /// planner has no engine or never retired a batch).
    pub retire_batch_size: f64,
    /// Cumulative soft-layer (beyond-window) reservation bookings (0 for
    /// pre-checked planners; positive under TWP's optimistic commits,
    /// which book unverified tails in the multi-owner soft layer).
    pub soft_bookings: u64,
    /// Soft bookings left below the last window slide's horizon — optimism
    /// failed repairs could not promote into the exclusive hard layer.
    /// Hard-layer overwrites are asserted in the reservation table, so
    /// this is the only window-consistency debt a planner can report.
    pub window_debt: u64,
    /// Batched edge-cost evaluation calls issued by the inter-strip
    /// search's frontier batching (0 for planners without a batched
    /// search).
    pub eval_batches: u64,
    /// Share of evaluation batches that actually ran on scoped threads —
    /// whether search parallelism engaged at all on this host.
    pub eval_parallel_share: f64,
}

impl DayReport {
    /// The TC/MC progress series as CSV (`progress,sim_time,planning_secs,
    /// memory_bytes`), ready for external plotting.
    pub fn snapshots_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("progress,sim_time,planning_secs,memory_bytes\n");
        for s in &self.snapshots {
            let _ = writeln!(
                out,
                "{:.4},{},{:.6},{}",
                s.progress, s.sim_time, s.planning_secs, s.memory_bytes
            );
        }
        out
    }
}

/// Incremental metric recorder driven by the simulator.
#[derive(Debug)]
pub struct Recorder {
    total_tasks: usize,
    completed: usize,
    next_tick: f64,
    tick: f64,
    planning: Duration,
    snapshots: Vec<Snapshot>,
    peak_memory: usize,
    latency_sum: u64,
    last_completion: Time,
}

impl Recorder {
    /// Create a recorder taking snapshots every `tick` progress (e.g. 0.02
    /// for the paper's 2% granularity).
    pub fn new(total_tasks: usize, tick: f64) -> Self {
        assert!(tick > 0.0 && tick <= 1.0);
        Recorder {
            total_tasks: total_tasks.max(1),
            completed: 0,
            next_tick: tick,
            tick,
            planning: Duration::ZERO,
            snapshots: Vec::with_capacity((1.0 / tick) as usize + 2),
            peak_memory: 0,
            latency_sum: 0,
            last_completion: 0,
        }
    }

    /// Add planner wall-clock time.
    pub fn add_planning(&mut self, d: Duration) {
        self.planning += d;
    }

    /// Cumulative planning time so far.
    pub fn planning_secs(&self) -> f64 {
        self.planning.as_secs_f64()
    }

    /// Record a completed task; snapshots fire when a progress tick is
    /// crossed. `memory` is the planner's current live byte count and
    /// `arrival` the task's emergence time (for the latency statistic).
    pub fn task_completed_at(&mut self, sim_time: Time, arrival: Time, memory: usize) {
        self.latency_sum += (sim_time - arrival) as u64;
        self.last_completion = self.last_completion.max(sim_time);
        self.task_completed(sim_time, memory);
    }

    /// Record a completed task; snapshots fire when a progress tick is
    /// crossed. `memory` is the planner's current live byte count.
    pub fn task_completed(&mut self, sim_time: Time, memory: usize) {
        self.completed += 1;
        self.peak_memory = self.peak_memory.max(memory);
        let progress = self.completed as f64 / self.total_tasks as f64;
        if progress + 1e-12 >= self.next_tick {
            self.snapshots.push(Snapshot {
                progress,
                sim_time,
                planning_secs: self.planning.as_secs_f64(),
                memory_bytes: memory,
            });
            while self.next_tick <= progress + 1e-12 {
                self.next_tick += self.tick;
            }
        }
    }

    /// Completed-task count.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Finish recording and build the report skeleton (the simulator fills
    /// the remaining counters).
    pub fn finish(
        self,
        planner: &'static str,
        makespan: Time,
        planned_requests: usize,
        failed_requests: usize,
        audit_conflicts: usize,
    ) -> DayReport {
        let mean_task_latency = if self.completed > 0 {
            self.latency_sum as f64 / self.completed as f64
        } else {
            0.0
        };
        let throughput_per_hour = if self.last_completion > 0 {
            self.completed as f64 * 3600.0 / self.last_completion as f64
        } else {
            0.0
        };
        DayReport {
            planner,
            tasks: self.total_tasks,
            completed: self.completed,
            planned_requests,
            failed_requests,
            makespan,
            planning_secs: self.planning.as_secs_f64(),
            peak_memory_bytes: self.peak_memory,
            snapshots: self.snapshots,
            audit_conflicts,
            mean_task_latency,
            throughput_per_hour,
            engine_probe_parallelism: 0.0,
            retire_batch_size: 0.0,
            soft_bookings: 0,
            window_debt: 0,
            eval_batches: 0,
            eval_parallel_share: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_fire_on_ticks() {
        let mut r = Recorder::new(100, 0.10);
        for i in 0..100 {
            r.add_planning(Duration::from_millis(1));
            r.task_completed(i, 1000 + i as usize);
        }
        assert_eq!(r.completed(), 100);
        let report = r.finish("X", 99, 300, 0, 0);
        assert_eq!(report.snapshots.len(), 10);
        assert!((report.snapshots[0].progress - 0.10).abs() < 1e-9);
        assert!((report.snapshots[9].progress - 1.00).abs() < 1e-9);
        // Planning time is monotone across snapshots.
        for w in report.snapshots.windows(2) {
            assert!(w[0].planning_secs <= w[1].planning_secs);
        }
        assert_eq!(report.peak_memory_bytes, 1099);
    }

    #[test]
    fn small_task_counts_do_not_skip_completion() {
        let mut r = Recorder::new(3, 0.02);
        r.task_completed(1, 10);
        r.task_completed(2, 20);
        r.task_completed(3, 30);
        let report = r.finish("X", 3, 9, 0, 0);
        assert_eq!(report.completed, 3);
        assert!(!report.snapshots.is_empty());
        assert!((report.snapshots.last().unwrap().progress - 1.0).abs() < 1e-9);
    }
}
