//! Property tests for the intra-strip backtracking planner (Algorithm 2),
//! checked against an independent brute-force 1-D space-time BFS.

use carp_geometry::{earliest_collision_reference, Segment, SegmentStore, SlopeIndexStore};
use carp_srp::intra::{plan_within, plan_within_cost, IntraConfig};
use carp_warehouse::types::Time;
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

const STRIP_LEN: i32 = 12;

fn arb_population() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        (1u32..30, 1i32..STRIP_LEN, 0usize..3, 0u32..8).prop_map(
            |(t0, s0, kind, span)| match kind {
                0 => Segment::wait(t0, t0 + span, s0),
                1 => Segment::travel(t0, s0, (s0 + span as i32).min(STRIP_LEN - 1)),
                _ => Segment::travel(t0, s0, (s0 - span as i32).max(0)),
            },
        ),
        0..8,
    )
}

/// Brute-force optimal arrival for a forward-only robot on a 1-D strip:
/// BFS over (time, position) with moves {wait, +1 toward goal}, colliding
/// states pruned via discrete occupancy of the population. Mirrors the
/// search space restrictions of Algorithm 2 (no backward moves) so its
/// optimum is the exact reference for `plan_within`.
fn brute_force_arrival(
    population: &[Segment],
    t0: Time,
    from: i32,
    to: i32,
    max_t: Time,
) -> Option<Time> {
    let dir = if to >= from { 1 } else { -1 };
    let occupied =
        |t: Time, s: i32| -> bool { population.iter().any(|seg| seg.pos_at(t) == Some(s)) };
    let swap = |t: Time, a: i32, b: i32| -> bool {
        population
            .iter()
            .any(|seg| seg.pos_at(t) == Some(b) && seg.pos_at(t + 1) == Some(a))
    };
    if occupied(t0, from) {
        return None;
    }
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    queue.push_back((t0, from));
    seen.insert((t0, from));
    while let Some((t, p)) = queue.pop_front() {
        if p == to {
            return Some(t);
        }
        if t >= max_t {
            continue;
        }
        // BFS explores in time order: first goal pop is optimal.
        for np in [p, p + dir] {
            if (np - from).abs() > (to - from).abs() {
                continue;
            }
            if occupied(t + 1, np) || (np != p && swap(t, p, np)) {
                continue;
            }
            if seen.insert((t + 1, np)) {
                queue.push_back((t + 1, np));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any route the backtracking returns is collision-free against the
    /// population (ground-truth discrete expansion) and arrives no earlier
    /// than the brute-force optimum of the same restricted search space.
    #[test]
    fn backtracking_is_sound_and_not_superoptimal(population in arb_population(), from in 0i32..STRIP_LEN, to in 0i32..STRIP_LEN) {
        let mut store = SlopeIndexStore::new();
        for s in &population {
            store.insert(*s);
        }
        let cfg = IntraConfig { max_wait: 40, max_nodes: 4096 };
        let t0 = 0;
        // Skip instances whose entry point is contested (the planner's
        // caller probes that first).
        prop_assume!(store.earliest_collision(&Segment::point(t0, from)).is_none());
        let result = plan_within(&store, t0, from, to, &cfg);
        let optimal = brute_force_arrival(&population, t0, from, to, 120);
        if let Some(route) = &result {
            // Soundness: no segment of the plan collides with any of the
            // population, by brute-force expansion.
            for seg in &route.segments {
                for other in &population {
                    prop_assert_eq!(earliest_collision_reference(seg, other), None,
                        "planned {} collides with {}", seg, other);
                }
            }
            prop_assert_eq!(route.destination(), to);
            // Never better than the restricted-space optimum.
            let opt = optimal.expect("a feasible plan implies brute-force feasibility");
            prop_assert!(route.arrive >= opt, "arrive {} beats optimum {}", route.arrive, opt);
        } else {
            // Incompleteness is allowed (greedy stop points), but only when
            // the instance is actually hard: if the brute force finds an
            // immediate unobstructed straight line, backtracking must too.
            if let Some(opt) = optimal {
                prop_assert!(
                    opt > t0 + (to - from).unsigned_abs(),
                    "backtracking missed the trivially free straight line (opt {})",
                    opt
                );
            }
        }
    }

    /// The allocation-free cost query agrees exactly with the full planner.
    #[test]
    fn cost_query_matches_full_plan(population in arb_population(), from in 0i32..STRIP_LEN, to in 0i32..STRIP_LEN) {
        let mut store = SlopeIndexStore::new();
        for s in &population {
            store.insert(*s);
        }
        let cfg = IntraConfig::default();
        prop_assume!(store.earliest_collision(&Segment::point(0, from)).is_none());
        let full = plan_within(&store, 0, from, to, &cfg).map(|r| r.arrive);
        let cost = plan_within_cost(&store, 0, from, to, &cfg);
        prop_assert_eq!(full, cost);
    }
}
