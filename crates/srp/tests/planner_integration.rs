//! End-to-end tests of the SRP planner against the ground-truth discrete
//! collision semantics (Definition 3).

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::collision::validate_routes;
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::types::Cell;
use carp_warehouse::{Planner, QueryKind, Request, Route, WarehouseMatrix};

fn toy_matrix() -> WarehouseMatrix {
    WarehouseMatrix::from_ascii(
        "......\n\
         .##.#.\n\
         .##.#.\n\
         ......\n\
         .##...\n\
         .##...\n\
         ......",
    )
}

#[test]
fn single_route_is_shortest_in_empty_traffic() {
    let mut srp = SrpPlanner::new(toy_matrix(), SrpConfig::default());
    let req = Request::new(0, 0, Cell::new(0, 0), Cell::new(6, 5), QueryKind::Pickup);
    let route = srp.plan(&req).route().cloned().expect("planned");
    assert!(route.validate(srp.matrix()).is_ok());
    assert_eq!(route.origin(), Cell::new(0, 0));
    assert_eq!(route.destination(), Cell::new(6, 5));
    // With no traffic the route must be a true shortest path.
    assert_eq!(route.duration(), 11);
}

#[test]
fn route_to_rack_destination_ends_on_rack() {
    let m = toy_matrix();
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let rack = Cell::new(2, 1);
    let req = Request::new(0, 0, Cell::new(0, 0), rack, QueryKind::Pickup);
    let route = srp.plan(&req).route().cloned().expect("planned");
    assert_eq!(route.destination(), rack);
    assert!(route.validate(srp.matrix()).is_ok());
    // Only the final step may touch the rack.
    for &g in &route.grids[..route.grids.len() - 1] {
        assert!(srp.matrix().is_free(g));
    }
}

#[test]
fn route_from_rack_origin_leaves_laterally() {
    let m = toy_matrix();
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let rack = Cell::new(1, 1);
    let req = Request::new(0, 3, rack, Cell::new(6, 0), QueryKind::Transmission);
    let route = srp.plan(&req).route().cloned().expect("planned");
    assert_eq!(route.origin(), rack);
    assert!(route.start >= 3);
    assert!(route.validate(srp.matrix()).is_ok());
}

#[test]
fn many_sequential_requests_are_mutually_collision_free() {
    let layout = LayoutConfig::small().generate();
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 120, 3.0, 42);
    let mut routes: Vec<Route> = Vec::new();
    let mut infeasible = 0;
    for req in &requests {
        match srp.plan(req).route() {
            Some(r) => {
                assert!(
                    r.validate(srp.matrix()).is_ok(),
                    "invalid route for {req:?}"
                );
                assert!(r.start >= req.t);
                routes.push(r.clone());
            }
            None => infeasible += 1,
        }
    }
    assert!(routes.len() >= 110, "too many infeasible: {infeasible}");
    assert_eq!(
        validate_routes(&routes),
        None,
        "planner committed a collision"
    );
}

#[test]
fn contested_origin_postpones_departure() {
    let m = WarehouseMatrix::empty(3, 8);
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    // First robot sweeps the row through (0,0) arriving there at t=5.
    let r1 = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(0, 5),
            Cell::new(0, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("planned");
    assert_eq!(r1.end_time(), 5);
    // Second robot wants to depart from (0,0) at t=5 — contested instant.
    let r2 = srp
        .plan(&Request::new(
            1,
            5,
            Cell::new(0, 0),
            Cell::new(2, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("planned");
    assert_eq!(validate_routes(&[r1, r2.clone()]), None);
    assert!(r2.start > 5, "origin occupied at t=5 by the arrived robot");
}

#[test]
fn fallback_resolves_strip_level_dead_end() {
    // Single corridor with a side bay: a head-on meeting inside one strip is
    // unresolvable forward-only, so SRP must fall back to grid A*.
    let m = WarehouseMatrix::from_ascii(
        "######\n\
         ......\n\
         ###.##",
    );
    // With retries disabled the planner must resort to the grid A*.
    let mut srp = SrpPlanner::new(
        m.clone(),
        SrpConfig {
            retry_bumps: [0, 0, 0],
            ..SrpConfig::default()
        },
    );
    let r1 = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(1, 0),
            Cell::new(1, 5),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("eastbound");
    let r2 = srp
        .plan(&Request::new(
            1,
            0,
            Cell::new(1, 5),
            Cell::new(1, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("westbound must succeed via fallback");
    assert_eq!(validate_routes(&[r1, r2]), None);
    assert!(srp.stats.fallbacks >= 1, "expected the A* fallback to fire");

    // With the default retry bumps the same dead end resolves inside the
    // strip framework: the westbound robot simply departs later.
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let r1 = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(1, 0),
            Cell::new(1, 5),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("eastbound");
    let r2 = srp
        .plan(&Request::new(
            1,
            0,
            Cell::new(1, 5),
            Cell::new(1, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("westbound via retry");
    assert_eq!(validate_routes(&[r1, r2]), None);
    assert_eq!(srp.stats.fallbacks, 0, "retry should avoid the fallback");
    assert!(srp.stats.retries >= 1);
}

#[test]
fn advance_retires_finished_routes_and_frees_memory() {
    let layout = LayoutConfig::small().generate();
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 40, 5.0, 7);
    let mut last_end = 0;
    for req in &requests {
        if let Some(r) = srp.plan(req).route() {
            last_end = last_end.max(r.end_time());
        }
    }
    let before = srp.memory_bytes();
    assert!(srp.total_segments() > 0);
    srp.advance(last_end + 1);
    assert_eq!(
        srp.total_segments(),
        0,
        "all routes finished, stores must drain"
    );
    assert_eq!(srp.active_routes(), 0);
    assert!(srp.memory_bytes() < before);
}

#[test]
fn retired_routes_no_longer_block() {
    let m = WarehouseMatrix::empty(2, 10);
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let r1 = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(0, 9),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("planned");
    srp.advance(r1.end_time() + 1);
    // A later request re-using the same corridor must get the unobstructed
    // shortest route.
    let r2 = srp
        .plan(&Request::new(
            1,
            r1.end_time() + 1,
            Cell::new(0, 9),
            Cell::new(0, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("planned");
    assert_eq!(r2.duration(), 9);
}

#[test]
fn stationary_request_is_a_point() {
    let mut srp = SrpPlanner::new(toy_matrix(), SrpConfig::default());
    let req = Request::new(0, 4, Cell::new(3, 3), Cell::new(3, 3), QueryKind::Return);
    let route = srp.plan(&req).route().cloned().expect("planned");
    assert_eq!(route.grids.len(), 1);
    assert_eq!(route.start, 4);
}

#[test]
fn heuristic_and_dijkstra_agree_on_route_duration() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 60, 2.0, 99);
    let mut with_h = SrpPlanner::new(
        layout.matrix.clone(),
        SrpConfig {
            use_heuristic: true,
            ..SrpConfig::default()
        },
    );
    let mut without_h = SrpPlanner::new(
        layout.matrix.clone(),
        SrpConfig {
            use_heuristic: false,
            ..SrpConfig::default()
        },
    );
    // Edge weights depend on the entry cell of each strip, so A* and plain
    // Dijkstra may settle strips with different entry cells and produce
    // slightly different (both valid) routes; we check aggregate closeness
    // and the expansion saving, not per-route equality.
    let (mut dur_h, mut dur_d) = (0u64, 0u64);
    for req in &requests {
        if let Some(r) = with_h.plan(req).route() {
            dur_h += r.duration() as u64;
        }
        if let Some(r) = without_h.plan(req).route() {
            dur_d += r.duration() as u64;
        }
    }
    let gap = (dur_h as f64 - dur_d as f64).abs() / dur_d as f64;
    assert!(gap < 0.05, "heuristic shifted total durations by {gap:.3}");
    assert!(
        with_h.stats.strips_settled < without_h.stats.strips_settled,
        "heuristic should settle fewer strips ({} vs {})",
        with_h.stats.strips_settled,
        without_h.stats.strips_settled
    );
}

#[test]
fn instrumented_breakdown_adds_up() {
    let layout = LayoutConfig::small().generate();
    let mut srp = SrpPlanner::new(
        layout.matrix.clone(),
        SrpConfig {
            instrument: true,
            ..SrpConfig::default()
        },
    );
    for req in generate_requests(&layout, 50, 4.0, 5) {
        srp.plan(&req);
    }
    let s = srp.stats;
    assert!(s.intra_ns > 0, "intra bucket empty");
    assert!(s.convert_ns > 0, "convert bucket empty");
    assert!(s.inter_ns > 0, "inter bucket empty");
    assert!(s.intra_calls > 0);
}
