//! Strip-graph construction on pathological warehouse shapes — degenerate
//! maps Algorithm 1 must still partition and connect correctly, and on
//! which the planner must still route.

use carp_srp::{SrpConfig, SrpPlanner, StripDir, StripGraph, StripKind};
use carp_warehouse::types::Cell;
use carp_warehouse::{Planner, QueryKind, Request, WarehouseMatrix};

fn assert_partition(m: &WarehouseMatrix, g: &StripGraph) {
    let mut counts = vec![0u32; g.num_vertices()];
    for c in m.cells() {
        let sid = g.strip_of(m, c);
        assert!(g.strip(sid).contains(c));
        counts[sid as usize] += 1;
    }
    for (i, s) in g.strips.iter().enumerate() {
        assert_eq!(counts[i], s.len(), "strip {i}");
    }
}

#[test]
fn single_free_row_is_one_latitudinal_strip() {
    let m = WarehouseMatrix::empty(1, 20);
    let g = StripGraph::build(&m);
    assert_eq!(g.num_vertices(), 1);
    assert_eq!(g.num_edges(), 0);
    assert_eq!(g.strips[0].dir, StripDir::Latitudinal);
    assert_eq!(g.strips[0].len(), 20);
    assert_partition(&m, &g);
}

#[test]
fn single_free_column_is_many_rows() {
    // Every row of a 1-wide map is "all free", so Algorithm 1 makes each a
    // latitudinal strip of length 1, stacked side by side.
    let m = WarehouseMatrix::empty(20, 1);
    let g = StripGraph::build(&m);
    assert_eq!(g.num_vertices(), 20);
    assert_eq!(g.num_edges(), 19);
    assert_partition(&m, &g);
    // And routing along it works.
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let r = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(19, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("route");
    assert_eq!(r.duration(), 19);
}

#[test]
fn fully_open_floor() {
    let m = WarehouseMatrix::empty(12, 17);
    let g = StripGraph::build(&m);
    // Every row is a full-free latitudinal strip.
    assert_eq!(g.num_vertices(), 12);
    assert_eq!(g.num_edges(), 11);
    assert_partition(&m, &g);
}

#[test]
fn checkerboard_degenerates_to_unit_strips() {
    // Worst case for aggregation: no two same-value cells align vertically
    // after row filtering.
    let mut m = WarehouseMatrix::empty(8, 8);
    for c in m.cells().collect::<Vec<_>>() {
        if (c.row + c.col) % 2 == 0 && c.row > 0 && c.row < 7 {
            m.set_rack(c, true);
        }
    }
    let g = StripGraph::build(&m);
    assert_partition(&m, &g);
    // All strips are single cells except the two free border rows.
    let unit = g.strips.iter().filter(|s| s.len() == 1).count();
    assert!(
        unit >= 8 * 6 - 2,
        "checkerboard must shatter into unit strips, got {unit}"
    );
}

#[test]
fn solid_rack_block_with_ring() {
    let m = WarehouseMatrix::from_ascii(
        "......\n\
         .####.\n\
         .####.\n\
         .####.\n\
         ......",
    );
    let g = StripGraph::build(&m);
    assert_partition(&m, &g);
    let racks: Vec<_> = g
        .strips
        .iter()
        .filter(|s| s.kind == StripKind::Rack)
        .collect();
    assert_eq!(racks.len(), 4, "one rack strip per column of the block");
    for r in &racks {
        assert_eq!(r.len(), 3);
    }
    // Interior rack cells (col 2,3 of the block) have no lateral aisle
    // access; routing must still reach an *edge* rack cell.
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let edge_rack = Cell::new(2, 1);
    let r = srp
        .plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            edge_rack,
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("edge rack reachable");
    assert_eq!(r.destination(), edge_rack);
}

#[test]
fn interior_rack_cell_is_unreachable_and_reported() {
    let m = WarehouseMatrix::from_ascii(
        "......\n\
         .####.\n\
         .####.\n\
         .####.\n\
         ......",
    );
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    // (2,2) is enclosed by racks on all four sides: no legal final step.
    let outcome = srp.plan(&Request::new(
        0,
        0,
        Cell::new(0, 0),
        Cell::new(2, 2),
        QueryKind::Pickup,
    ));
    assert!(
        outcome.route().is_none(),
        "interior rack cells have no access step"
    );
}

#[test]
fn horizontal_rack_bars_become_longitudinal_unit_runs() {
    // A full-width rack row: not a free row, so it aggregates column-wise
    // into 1-cell rack strips.
    let m = WarehouseMatrix::from_ascii(
        ".....\n\
         #####\n\
         .....",
    );
    let g = StripGraph::build(&m);
    assert_partition(&m, &g);
    let racks = g
        .strips
        .iter()
        .filter(|s| s.kind == StripKind::Rack)
        .count();
    assert_eq!(racks, 5);
    // The two free rows must NOT be connected (the rack bar separates
    // them; rack strips are only endpoints).
    let mut srp = SrpPlanner::new(m, SrpConfig::default());
    let outcome = srp.plan(&Request::new(
        0,
        0,
        Cell::new(0, 0),
        Cell::new(2, 4),
        QueryKind::Pickup,
    ));
    assert!(outcome.route().is_none(), "the rack bar must be impassable");
}

#[test]
fn transitions_exist_for_every_edge_geometry() {
    use carp_srp::EdgeGeom;
    let layout = carp_warehouse::layout::LayoutConfig::small().generate();
    let g = StripGraph::build(&layout.matrix);
    let (mut perp, mut lat, mut col) = (0, 0, 0);
    for sid in 0..g.num_vertices() as u32 {
        for e in g.edges(sid) {
            match e.geom {
                EdgeGeom::Perpendicular { u_cell, v_cell } => {
                    perp += 1;
                    assert!(u_cell.is_adjacent(v_cell));
                    assert!(g.strip(sid).contains(u_cell));
                    assert!(g.strip(e.to).contains(v_cell));
                }
                EdgeGeom::Collinear { u_cell, v_cell } => {
                    col += 1;
                    assert!(u_cell.is_adjacent(v_cell));
                }
                EdgeGeom::Lateral { lo, hi } => {
                    lat += 1;
                    assert!(lo <= hi);
                    // Every overlap coordinate yields an adjacent pair.
                    let (gu, gv) = g.transition(sid, e, g.strip(sid).cell_at(0));
                    assert!(gu.is_adjacent(gv));
                }
            }
        }
    }
    assert!(perp > 0, "layout must contain perpendicular adjacencies");
    assert!(lat > 0, "layout must contain lateral adjacencies");
    let _ = col; // collinear runs may or may not occur in regular layouts
}
