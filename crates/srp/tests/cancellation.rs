//! Cooperative cancellation and the frontier gather skip.
//!
//! Two service-facing properties of the Phase-1 search:
//!
//! * **Cancellation is pure refusal.** A fired [`CancelToken`] makes
//!   `plan` return `Infeasible` without committing anything — replanning
//!   the same request after disarming must produce exactly what an
//!   untouched planner would have produced. An armed-but-unfired token
//!   must change nothing at all (bit-identical outcomes).
//!
//! * **The gather skip is invisible.** Batched frontier gathers skip
//!   pricing edges whose target is already pending at the same f-value
//!   with a strictly smaller pop key — those edge entries are provably
//!   discarded unevaluated. The skip count surfaces in
//!   [`SrpStats::frontier_skips`]; routes must not move.
//!
//! [`SrpStats::frontier_skips`]: carp_srp::SrpStats::frontier_skips

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::CancelToken;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::{PlanOutcome, Planner};
use std::time::{Duration, Instant};

#[test]
fn fired_token_refuses_without_state_damage() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 30, 3.0, 5);

    let mut reference = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let expected: Vec<PlanOutcome> = requests.iter().map(|r| reference.plan(r)).collect();
    assert!(
        expected.iter().any(|o| o.route().is_some()),
        "stream plans nothing — test is vacuous"
    );

    // Same stream, but every request is first attempted under a fired
    // token. Each attempt must refuse, and the disarmed replan must then
    // reproduce the reference outcome — proving the aborted search left
    // no committed residue behind.
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let token = CancelToken::new();
    token.cancel();
    for (request, expect) in requests.iter().zip(&expected) {
        srp.arm_cancel(Some(token.clone()));
        assert_eq!(
            srp.plan(request),
            PlanOutcome::Infeasible,
            "a fired token must refuse request {}",
            request.id
        );
        srp.arm_cancel(None);
        assert_eq!(
            &srp.plan(request),
            expect,
            "replan after cancellation diverged for request {}",
            request.id
        );
    }
}

#[test]
fn unfired_token_is_bit_identical_to_no_token() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 40, 3.0, 9);

    let mut bare = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let expected: Vec<PlanOutcome> = requests.iter().map(|r| bare.plan(r)).collect();

    let mut armed = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
    armed.arm_cancel(Some(token));
    let got: Vec<PlanOutcome> = requests.iter().map(|r| armed.plan(r)).collect();
    assert_eq!(expected, got, "an unfired token changed planner output");
}

#[test]
fn frontier_skip_engages_and_routes_do_not_move() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 200, 8.0, 7);

    // Serial reference: no batching, hence no gather skip.
    let serial = SrpConfig {
        store_partitions: 1,
        frontier_batch: 1,
        engine_threads: Some(1),
        ..SrpConfig::default()
    };
    let mut reference = SrpPlanner::new(layout.matrix.clone(), serial);
    let expected: Vec<PlanOutcome> = requests.iter().map(|r| reference.plan(r)).collect();
    assert_eq!(
        reference.stats.frontier_skips, 0,
        "serial search must never take the batched gather skip"
    );

    // Batched search on the same stream: the skip must actually fire (the
    // assertion below is what keeps this test from passing vacuously) and
    // every outcome must stay bit-identical.
    let batched = SrpConfig {
        store_partitions: 2,
        frontier_batch: 64,
        engine_threads: Some(4),
        ..SrpConfig::default()
    };
    let mut srp = SrpPlanner::new(layout.matrix.clone(), batched);
    let got: Vec<PlanOutcome> = requests.iter().map(|r| srp.plan(r)).collect();
    assert_eq!(expected, got, "gather skip changed a committed route");
    assert!(
        srp.stats.frontier_skips > 0,
        "gather skip never engaged on the dense stream (evals={})",
        srp.stats.frontier_evals
    );
    assert!(
        srp.stats.frontier_skips < srp.stats.frontier_evals,
        "skip count implausibly large: {} skips vs {} evals",
        srp.stats.frontier_skips,
        srp.stats.frontier_evals
    );
}
