//! Differential conformance suite for the batched frontier search.
//!
//! The Phase-1 inter-strip search (Algorithm 4) may pre-evaluate edge
//! costs in batched, partition-parallel fan-outs (`frontier_batch > 1`),
//! but the committed result must be **bit-identical** to the one-edge-at-
//! a-time serial relaxation for every partition count and thread count:
//! same routes, same costs, same provenance tags. These tests pin that
//! contract by planning the same request stream under a grid of engine
//! configurations and diffing every outcome against the serial reference
//! (`store_partitions = 1`, `frontier_batch = 1`, one engine thread).
//!
//! Anything that differs — a route cell, a start time, a provenance
//! string — is a determinism bug in the batching layer, never acceptable
//! tuning noise.

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::{PlanOutcome, Planner, Request, WarehouseMatrix};
use proptest::prelude::*;

/// Plan the full request stream under one configuration, returning every
/// outcome plus the provenance tag of every planned route. The planner is
/// fresh per call so committed traffic evolves identically across runs.
fn plan_all(
    matrix: &WarehouseMatrix,
    requests: &[Request],
    config: SrpConfig,
) -> (Vec<PlanOutcome>, Vec<Option<String>>) {
    let mut srp = SrpPlanner::new(matrix.clone(), config);
    let outcomes: Vec<PlanOutcome> = requests.iter().map(|r| srp.plan(r)).collect();
    let tags = requests.iter().map(|r| srp.provenance(r.id)).collect();
    (outcomes, tags)
}

/// The serial reference configuration: no batching, one partition, forced
/// single-thread engine. Everything else must reproduce its output bit
/// for bit.
fn serial_reference() -> SrpConfig {
    SrpConfig {
        store_partitions: 1,
        frontier_batch: 1,
        engine_threads: Some(1),
        ..SrpConfig::default()
    }
}

/// The configuration grid the suite sweeps: partition counts {1, 2, 8},
/// forced single-thread fallback and forced multi-thread scoped path, plus
/// a deliberately awkward batch size that never divides a frontier evenly.
fn variant_grid() -> Vec<SrpConfig> {
    let mut grid = Vec::new();
    for partitions in [1usize, 2, 8] {
        for threads in [Some(1), Some(4)] {
            grid.push(SrpConfig {
                store_partitions: partitions,
                frontier_batch: 64,
                engine_threads: threads,
                ..SrpConfig::default()
            });
        }
    }
    // Tiny odd batch: forces many partial batches and cache-hit pops.
    grid.push(SrpConfig {
        store_partitions: 2,
        frontier_batch: 3,
        engine_threads: Some(4),
        ..SrpConfig::default()
    });
    grid
}

fn assert_identical(
    label: &str,
    reference: &(Vec<PlanOutcome>, Vec<Option<String>>),
    candidate: &(Vec<PlanOutcome>, Vec<Option<String>>),
) {
    assert_eq!(
        reference.0, candidate.0,
        "{label}: routes/costs diverged from the serial reference"
    );
    assert_eq!(
        reference.1, candidate.1,
        "{label}: provenance tags diverged from the serial reference"
    );
}

/// Random W-1/W-2-style layout: same rack-band structure as the paper's
/// warehouses, with randomised dimensions, cluster length and aisle gaps.
/// `target_racks` is derived from the generator's own capacity formulas so
/// the configuration is always feasible.
fn arb_layout() -> impl Strategy<Value = LayoutConfig> {
    (20u16..32, 18u16..28, 3u16..5, 1u16..3, 1u16..3).prop_map(
        |(rows, cols, cluster_len, col_gap, band_gap)| {
            let (mt, mb, ml, mr) = (2u16, 3u16, 2u16, 2u16);
            let slots = (cols - ml - mr + col_gap) / (2 + col_gap);
            let bands = (rows - mt - mb + band_gap) / (cluster_len + band_gap);
            let capacity = u32::from(bands) * u32::from(slots) * 2 * u32::from(cluster_len);
            LayoutConfig {
                rows,
                cols,
                cluster_len,
                col_gap,
                band_gap,
                margin_top: mt,
                margin_bottom: mb,
                margin_left: ml,
                margin_right: mr,
                target_racks: (capacity / 2).max(2 * u32::from(cluster_len)),
                pickers: 4,
                robots: 6,
            }
        },
    )
}

proptest! {
    // Each case plans the same stream under 8 configurations; keep the
    // population modest so the full sweep stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched parallel search is bit-identical to serial search on random
    /// warehouse layouts and request streams, for partition counts
    /// {1, 2, 8}, forced single-thread fallback and forced multi-thread
    /// scoped fan-out.
    #[test]
    fn parallel_search_matches_serial(
        layout_cfg in arb_layout(),
        n in 8usize..20,
        seed in 0u64..1_000,
    ) {
        let layout = layout_cfg.generate();
        let requests = generate_requests(&layout, n, 3.0, seed);
        let reference = plan_all(&layout.matrix, &requests, serial_reference());
        for config in variant_grid() {
            let label = format!(
                "partitions={} batch={} threads={:?}",
                config.store_partitions, config.frontier_batch, config.engine_threads
            );
            let candidate = plan_all(&layout.matrix, &requests, config);
            assert_identical(&label, &reference, &candidate);
        }
    }
}

/// Deterministic conformance on the structured small warehouse with a
/// denser stream than the property cases, including a check that the
/// batched path actually engaged (otherwise the suite would pass vacuously
/// by never exercising the new code).
#[test]
fn dense_stream_conformance_and_batching_engages() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 80, 4.0, 7);
    let reference = plan_all(&layout.matrix, &requests, serial_reference());
    let planned = reference.0.iter().filter(|o| o.route().is_some()).count();
    assert!(
        planned > 40,
        "stream too sparse to be a meaningful diff base"
    );

    for config in variant_grid() {
        // Batching self-disables when the fan-out could never engage
        // (single thread or single partition) — it would be pure
        // speculative overhead there.
        let batched = config.frontier_batch > 1
            && config.engine_threads.unwrap_or(1) > 1
            && config.store_partitions > 1;
        let label = format!(
            "partitions={} batch={} threads={:?}",
            config.store_partitions, config.frontier_batch, config.engine_threads
        );
        let mut srp = SrpPlanner::new(layout.matrix.clone(), config);
        let outcomes: Vec<PlanOutcome> = requests.iter().map(|r| srp.plan(r)).collect();
        let tags: Vec<Option<String>> = requests.iter().map(|r| srp.provenance(r.id)).collect();
        assert_identical(&label, &reference, &(outcomes, tags));
        if batched {
            assert!(
                srp.stats.frontier_batches > 0,
                "{label}: batched search path never engaged"
            );
            let metrics = srp.engine_metrics().expect("SRP reports engine metrics");
            assert!(
                metrics.eval_batches > 0,
                "{label}: engine saw no eval_many batches"
            );
            // Each frontier batch issues a Phase-A eval_many over every
            // edge plus a Phase-B eval_many over the survivors, so the
            // engine job count is bounded by [1x, 2x] the planner's
            // per-edge evaluation count.
            let evals = srp.stats.frontier_evals as u64;
            assert!(
                metrics.eval_jobs >= evals && metrics.eval_jobs <= 2 * evals,
                "{label}: engine job count {} outside [{evals}, {}]",
                metrics.eval_jobs,
                2 * evals
            );
        }
    }
}

/// The serial path itself is independent of partition count — the
/// pre-existing invariant the batching layer builds on. Pinned here so a
/// regression points at the store sharding rather than the frontier code.
#[test]
fn serial_search_is_partition_invariant() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 40, 3.0, 11);
    let reference = plan_all(&layout.matrix, &requests, serial_reference());
    for partitions in [2usize, 8] {
        let config = SrpConfig {
            store_partitions: partitions,
            frontier_batch: 1,
            engine_threads: Some(1),
            ..SrpConfig::default()
        };
        let candidate = plan_all(&layout.matrix, &requests, config);
        assert_identical(
            &format!("serial partitions={partitions}"),
            &reference,
            &candidate,
        );
    }
}
