//! Retirement edge cases of the engine-backed SRP planner: cancellation
//! interleaved with batched `advance()` retirement, cancellation of
//! already-retired routes, and a property test pinning batched retirement
//! to a serially-retired twin planner.

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::request::RequestId;
use carp_warehouse::route::Route;
use carp_warehouse::tasks::generate_requests;
use proptest::prelude::*;

fn planner(partitions: usize) -> SrpPlanner {
    let layout = LayoutConfig::small().generate();
    let config = SrpConfig {
        store_partitions: partitions,
        ..SrpConfig::default()
    };
    SrpPlanner::new(layout.matrix, config)
}

/// Plan a deterministic stream, returning `(id, route)` per commit.
fn plan_stream(p: &mut SrpPlanner, n: usize, seed: u64) -> Vec<(RequestId, Route)> {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, n, 4.0, seed);
    let mut planned = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = p.plan(req) {
            planned.push((req.id, r));
        }
    }
    planned
}

#[test]
fn cancel_between_advances_excludes_the_route_from_later_retirement() {
    let mut p = planner(4);
    let planned = plan_stream(&mut p, 30, 9);
    assert!(planned.len() >= 25);
    let horizon = planned.iter().map(|(_, r)| r.end_time()).max().unwrap();

    // Retire the early half, cancel a still-active route from the late
    // half, then retire the rest: the cancelled id must not be retired
    // again (its queue entry is gone) and every segment must come out.
    let mid = planned[planned.len() / 2].1.end_time();
    p.advance(mid);
    let victim = planned
        .iter()
        .rev()
        .find(|(_, r)| r.end_time() >= mid)
        .map(|(id, _)| *id)
        .expect("a late route is still active");
    assert!(p.cancel(victim), "cancel of an active route");
    assert!(!p.cancel(victim), "second cancel refuses");
    p.advance(horizon + 1);
    assert_eq!(p.total_segments(), 0, "every segment released");
    assert_eq!(p.active_routes(), 0);
}

#[test]
fn cancel_of_an_already_retired_route_refuses() {
    let mut p = planner(1);
    let planned = plan_stream(&mut p, 12, 5);
    let (first_id, first_route) = planned.first().cloned().expect("planned");
    // Retire it through the batch path, then cancel.
    p.advance(first_route.end_time() + 1);
    assert!(!p.cancel(first_id), "cancel after retirement must refuse");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched retirement (one `advance` draining many routes through one
    /// engine removal pass) leaves exactly the state of a twin planner that
    /// retires the same routes one at a time.
    #[test]
    fn batched_retirement_matches_a_serially_retired_twin(
        seed in 0u64..500,
        n in 10usize..28,
        cut in 1u32..200,
    ) {
        let mut batched = planner(4);
        let planned = plan_stream(&mut batched, n, seed);
        // The twin replays the identical stream (planning is deterministic,
        // so both planners hold bit-identical committed state)...
        let mut serial = planner(1);
        let twin = plan_stream(&mut serial, n, seed);
        prop_assert_eq!(&planned, &twin, "planning must not depend on partitions");

        // ...then both retire everything ending before `cut`: one in a
        // single batched advance, the other route by route via cancel()
        // (which runs the same path with singleton batches).
        batched.advance(cut);
        for (id, route) in &twin {
            if route.end_time() < cut {
                prop_assert!(serial.cancel(*id));
            }
        }
        prop_assert_eq!(batched.total_segments(), serial.total_segments());
        prop_assert_eq!(batched.active_routes(), serial.active_routes());
    }
}
