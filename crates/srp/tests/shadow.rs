//! Differential shadow-store mode (feature `shadow-store`): the SRP
//! planner with [`ShadowStore`] runs the slope index and the naive ordered
//! set side by side, asserting identical collision answers on **every**
//! store query. Any divergence panics inside the store, so a green run is
//! a proof that the two collision back-ends agreed over the whole stream.
#![cfg(feature = "shadow-store")]

use carp_geometry::ShadowStore;
use carp_srp::{PlannerPath, SrpConfig, SrpPlanner};
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::{Layout, LayoutConfig, WarehousePreset};
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::tasks::generate_requests;

/// Drive one request stream through a shadow-store planner: every store
/// query is differentially checked inside the store, every committed route
/// is audited online, and the surviving set is batch-validated at the end.
fn run_shadow_stream(layout: &Layout, n: usize, rate: f64, seed: u64, partitions: usize) {
    let config = SrpConfig {
        store_partitions: partitions,
        ..SrpConfig::default()
    };
    let mut planner = SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), config);
    let requests = generate_requests(layout, n, rate, seed);
    let mut auditor = IncrementalAuditor::new();
    let mut routes = Vec::new();
    for req in &requests {
        planner.advance(req.t);
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            if let Err(c) = auditor.commit(req.id, &r) {
                panic!(
                    "shadow-mode stream leaked a conflict: {c}\n  incoming provenance: {}\n  existing provenance: {}",
                    planner.provenance(c.incoming).unwrap_or_default(),
                    planner.provenance(c.existing).unwrap_or_default(),
                );
            }
            routes.push(r);
        }
    }
    assert!(
        routes.len() >= n - n / 20,
        "only {} of {} planned",
        routes.len(),
        requests.len()
    );
    assert_eq!(validate_routes(&routes), None);
}

#[test]
fn shadow_mode_validates_a_full_small_stream_without_divergence() {
    let layout = LayoutConfig::small().generate();
    let mut planner =
        SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 120, 4.0, 42);
    let mut auditor = IncrementalAuditor::new();
    let mut routes = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            // Online audit on top of the differential stores: the stores
            // agreeing is necessary, the routes being conflict-free is the
            // end-to-end guarantee.
            if let Err(c) = auditor.commit(req.id, &r) {
                panic!(
                    "shadow-mode stream leaked a conflict: {c}\n  incoming provenance: {}\n  existing provenance: {}",
                    planner.provenance(c.incoming).unwrap_or_default(),
                    planner.provenance(c.existing).unwrap_or_default(),
                );
            }
            routes.push(r);
        }
    }
    assert!(
        routes.len() >= 114,
        "only {} of {} planned",
        routes.len(),
        requests.len()
    );
    assert_eq!(validate_routes(&routes), None);
}

#[test]
fn shadow_mode_validates_w1_preset_stream() {
    let layout = WarehousePreset::W1.generate();
    run_shadow_stream(&layout, 150, 3.0, 104, 1);
}

#[test]
fn shadow_mode_validates_w2_preset_stream() {
    let layout = WarehousePreset::W2.generate();
    run_shadow_stream(&layout, 120, 3.0, 21, 4);
}

#[test]
fn shadow_mode_validates_w3_preset_stream() {
    let layout = WarehousePreset::W3.generate();
    run_shadow_stream(&layout, 100, 3.0, 35, 2);
}

#[test]
fn shadow_mode_survives_a_cancellation_heavy_stream() {
    // Every third committed route is cancelled right after the next commit,
    // so batched removals constantly interleave with inserts and probes —
    // the retirement path the engine refactor most needs differential
    // coverage on.
    let layout = WarehousePreset::W1.generate();
    let config = SrpConfig {
        store_partitions: 4,
        ..SrpConfig::default()
    };
    let mut planner = SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), config);
    let requests = generate_requests(&layout, 150, 4.0, 77);
    let mut live: Vec<(u64, carp_warehouse::route::Route)> = Vec::new();
    let mut kept = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        planner.advance(req.t);
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            live.push((req.id, r));
        }
        if i % 3 == 2 {
            if let Some((id, _)) = live.pop() {
                assert!(planner.cancel(id), "cancel of a live route must succeed");
                assert!(!planner.cancel(id), "double cancel must refuse");
            }
        }
        while live.len() > 8 {
            kept.push(live.remove(0).1);
        }
    }
    kept.extend(live.into_iter().map(|(_, r)| r));
    // Cancelled routes are gone; what stayed committed must be mutually
    // conflict-free (cancellation never un-resolves surviving routes).
    assert_eq!(validate_routes(&kept), None);
    let horizon = kept.iter().map(|r| r.end_time()).max().unwrap_or(0);
    planner.advance(horizon + 1);
    assert_eq!(planner.total_segments(), 0);
}

#[test]
fn shadow_mode_supports_cancel_and_retirement() {
    let layout = LayoutConfig::small().generate();
    let mut planner =
        SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 40, 3.0, 7);
    let mut planned = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            assert!(planner
                .route_provenance(req.id)
                .is_some_and(|p| p.path != PlannerPath::External));
            planned.push((req.id, r));
        }
    }
    // Cancel every other route, then retire the rest via advance().
    for (i, (id, _)) in planned.iter().enumerate() {
        if i % 2 == 0 {
            assert!(planner.cancel(*id));
        }
    }
    let horizon = planned.iter().map(|(_, r)| r.end_time()).max().unwrap_or(0);
    planner.advance(horizon + 1);
    assert_eq!(
        planner.total_segments(),
        0,
        "all shadowed segments released"
    );
    assert_eq!(planner.active_routes(), 0);
}
