//! Differential shadow-store mode (feature `shadow-store`): the SRP
//! planner with [`ShadowStore`] runs the slope index and the naive ordered
//! set side by side, asserting identical collision answers on **every**
//! store query. Any divergence panics inside the store, so a green run is
//! a proof that the two collision back-ends agreed over the whole stream.
#![cfg(feature = "shadow-store")]

use carp_geometry::ShadowStore;
use carp_srp::{PlannerPath, SrpConfig, SrpPlanner};
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::tasks::generate_requests;

#[test]
fn shadow_mode_validates_a_full_small_stream_without_divergence() {
    let layout = LayoutConfig::small().generate();
    let mut planner =
        SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 120, 4.0, 42);
    let mut auditor = IncrementalAuditor::new();
    let mut routes = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            // Online audit on top of the differential stores: the stores
            // agreeing is necessary, the routes being conflict-free is the
            // end-to-end guarantee.
            if let Err(c) = auditor.commit(req.id, &r) {
                panic!(
                    "shadow-mode stream leaked a conflict: {c}\n  incoming provenance: {}\n  existing provenance: {}",
                    planner.provenance(c.incoming).unwrap_or_default(),
                    planner.provenance(c.existing).unwrap_or_default(),
                );
            }
            routes.push(r);
        }
    }
    assert!(
        routes.len() >= 114,
        "only {} of {} planned",
        routes.len(),
        requests.len()
    );
    assert_eq!(validate_routes(&routes), None);
}

#[test]
fn shadow_mode_supports_cancel_and_retirement() {
    let layout = LayoutConfig::small().generate();
    let mut planner =
        SrpPlanner::<ShadowStore>::with_store(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 40, 3.0, 7);
    let mut planned = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = planner.plan(req) {
            assert!(planner
                .route_provenance(req.id)
                .is_some_and(|p| p.path != PlannerPath::External));
            planned.push((req.id, r));
        }
    }
    // Cancel every other route, then retire the rest via advance().
    for (i, (id, _)) in planned.iter().enumerate() {
        if i % 2 == 0 {
            assert!(planner.cancel(*id));
        }
    }
    let horizon = planned.iter().map(|(_, r)| r.end_time()).max().unwrap_or(0);
    planner.advance(horizon + 1);
    assert_eq!(
        planner.total_segments(),
        0,
        "all shadowed segments released"
    );
    assert_eq!(planner.active_routes(), 0);
}
