//! **Strip-based Route Planning (SRP)** — the primary contribution of
//! *"Collision-Aware Route Planning in Warehouses Made Efficient: A
//! Strip-based Framework"* (ICDE 2023).
//!
//! SRP plans collision-free routes for warehouse robots by exploiting the
//! regularity of warehouse layouts:
//!
//! 1. [`strip_graph`] aggregates the grid matrix into **strips** (rows or
//!    columns of same-value grids, Algorithm 1) and connects adjacent
//!    strips into the strip graph;
//! 2. [`intra`] plans routes *within* a strip by backtracking over
//!    space-time segments (Algorithm 2), with collision detection delegated
//!    to the exact geometry of `carp-geometry` (Eq. 2–4, Algorithm 3);
//! 3. [`planner`] runs the end-to-end search (Algorithm 4): a
//!    time-dependent shortest-path search over strips whose edge weights
//!    are produced by intra-strip planning, plus the rare grid-level A\*
//!    fallback;
//! 4. [`convert`] translates between grid routes and strip segments — the
//!    third cost component of Fig. 22(a).
//!
//! ```
//! use carp_srp::{SrpPlanner, SrpConfig};
//! use carp_warehouse::{Planner, Request, QueryKind, WarehouseMatrix, types::Cell};
//!
//! let matrix = WarehouseMatrix::from_ascii(
//!     ".....\n\
//!      .##..\n\
//!      .##..\n\
//!      .....");
//! let mut srp = SrpPlanner::new(matrix, SrpConfig::default());
//! let req = Request::new(0, 0, Cell::new(0, 0), Cell::new(3, 4), QueryKind::Pickup);
//! let outcome = srp.plan(&req);
//! assert!(outcome.route().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod intra;
pub mod planner;
pub mod strip_graph;

pub use intra::{IntraConfig, IntraRoute};
pub use planner::{PlannerPath, Provenance, SrpConfig, SrpPlanner, SrpStats};
pub use strip_graph::{EdgeGeom, Strip, StripDir, StripEdge, StripGraph, StripId, StripKind};
