//! End-to-end Strip-based Route Planning (§VI, Algorithm 4).
//!
//! Planning one request runs a time-dependent Dijkstra over the strip
//! graph. Labels are `(strip, entry cell, arrival time)`; relaxing an edge
//! `u → v` calls the intra-strip backtracking planner to move from the
//! current cell to the transit grid adjacent to `v` (the edge weight of
//! Definition 5), then crosses the boundary. Collision awareness lives
//! entirely at the intra-strip level (segment stores) plus one global
//! boundary-crossing table for cross-strip swap conflicts (an engineering
//! completion the paper leaves implicit — DESIGN.md §3).
//!
//! The search restrictions (no backward intra-strip moves, greedy transit
//! pairs, one visit per strip) can rarely make a request infeasible; as the
//! paper prescribes (§VI remarks), such requests fall back to grid-level
//! space-time A\*, reconstructing a reservation table from the committed
//! segments on demand.

use crate::convert::{compose, decompose};
use crate::intra::{plan_within, plan_within_cost, IntraConfig, IntraRoute};
use crate::strip_graph::{EdgeGeom, StripEdge, StripGraph, StripId, StripKind};
use carp_geometry::engine::{ShardKey, StoreEngine};
use carp_geometry::store::{SegmentId, SegmentStore};
use carp_geometry::{Segment, SlopeIndexStore};
use carp_spacetime::{AStarConfig, ReservationTable, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{EngineMetrics, PlanOutcome, Planner, SpeculativePlanner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};
use std::time::Instant;

/// Configuration of the SRP planner.
#[derive(Debug, Clone)]
pub struct SrpConfig {
    /// Intra-strip backtracking limits.
    pub intra: IntraConfig,
    /// How long a robot may wait at a transit cell for the boundary
    /// crossing and the entry cell of the next strip to clear.
    pub max_entry_delay: Time,
    /// How long the departure may be postponed when the origin cell is
    /// contested at the request time.
    pub max_start_delay: Time,
    /// Use the Manhattan heuristic on the inter-strip search (turns the
    /// paper's plain Dijkstra into A\*; identical results on FIFO edge
    /// weights, substantially fewer strip expansions — see DESIGN.md §6).
    pub use_heuristic: bool,
    /// Start-time bumps retried at strip level before resorting to the
    /// grid fallback. A request whose direct traversal is blocked (e.g. a
    /// head-on meeting inside one aisle, unresolvable by forward-only
    /// backtracking) usually becomes feasible once the oncoming traffic has
    /// drained — retrying with a postponed departure keeps planning inside
    /// the fast strip framework.
    pub retry_bumps: [Time; 3],
    /// Fall back to grid-level space-time A\* when the strip-level search
    /// fails (§VI remarks).
    pub use_fallback: bool,
    /// Fallback search limits.
    pub fallback: AStarConfig,
    /// Record the Fig. 22(a) TC breakdown (adds two `Instant` reads per
    /// intra-strip call; off by default to keep TC comparisons clean).
    pub instrument: bool,
    /// Lock-striped partitions of the segment-store engine
    /// ([`StoreEngine`]). `1` is the serial path (bit-identical to the
    /// pre-engine planner); higher counts let batched collision probes fan
    /// out across partitions on multi-core hosts. Routes are identical for
    /// every value — only concurrency changes.
    pub store_partitions: usize,
    /// Maximum frontier batch gathered by the Phase-1 search for one
    /// partition-parallel edge-cost evaluation (DESIGN.md §11). `0` or `1`
    /// disables batching — every edge is evaluated one at a time exactly
    /// when it reaches the top of the heap. Batching also self-disables
    /// when the engine has a single thread or a single partition (the
    /// fan-out could never engage, so speculation would be pure overhead).
    /// Routes are bit-identical for every value: batching only
    /// *pre-evaluates* costs the serial pop loop would compute anyway, and
    /// the pop/commit order never changes.
    pub frontier_batch: usize,
    /// Worker-thread budget handed to the engine's fan-outs. `None`
    /// detects the host's core count; `Some(1)` forces every fan-out
    /// serial; `Some(t > 1)` enables the scoped-thread path even on
    /// single-core hosts (the conformance suite pins both paths with it).
    pub engine_threads: Option<usize>,
    /// Cooperative cancellation token ([`Planner::arm_cancel`]): the
    /// Phase-1 search polls it every few heap pops and at each frontier
    /// batch, abandoning the request (→ `Infeasible`, nothing committed)
    /// once it fires. `None` (the default) never cancels. The token only
    /// *stops* work — with it unfired, routes are bit-identical to an
    /// unarmed run, so the determinism contract is untouched whenever
    /// deadlines are disabled.
    pub cancel: Option<carp_warehouse::planner::CancelToken>,
}

impl Default for SrpConfig {
    fn default() -> Self {
        SrpConfig {
            intra: IntraConfig::default(),
            max_entry_delay: 48,
            max_start_delay: 128,
            retry_bumps: [8, 24, 72],
            use_heuristic: true,
            use_fallback: true,
            fallback: AStarConfig::default(),
            instrument: false,
            store_partitions: 1,
            frontier_batch: 64,
            engine_threads: None,
            cancel: None,
        }
    }
}

/// Counters and the Fig. 22(a) time breakdown.
#[derive(Debug, Default, Clone, Copy)]
pub struct SrpStats {
    /// Successfully planned requests.
    pub planned: usize,
    /// Requests resolved by a strip-level retry with postponed departure.
    pub retries: usize,
    /// Requests resolved by the A\* fallback.
    pub fallbacks: usize,
    /// Requests that could not be planned at all.
    pub infeasible: usize,
    /// Strip-graph nodes settled across all requests.
    pub strips_settled: usize,
    /// Intra-strip planning calls.
    ///
    /// Note: with frontier batching enabled this counts *evaluations*, and
    /// batches may speculatively evaluate edges the serial pop loop would
    /// have skipped — so the counter can differ between batch sizes even
    /// though routes, costs and provenance are bit-identical.
    pub intra_calls: usize,
    /// Frontier batches gathered by the Phase-1 search (each one
    /// partition-parallel `eval_many` fan-out; DESIGN.md §11).
    pub frontier_batches: usize,
    /// Edge evaluations across all frontier batches.
    pub frontier_evals: usize,
    /// Edge evaluations *skipped* by the frontier gather because the
    /// target strip was already priced at the batch's f-value — the
    /// pending node entry settles it before the edge entry could win, so
    /// pricing the edge is provably wasted work (DESIGN.md §11).
    pub frontier_skips: usize,
    /// Nanoseconds in inter-strip search bookkeeping (when instrumented).
    pub inter_ns: u64,
    /// Nanoseconds in intra-strip planning + collision queries.
    pub intra_ns: u64,
    /// Nanoseconds converting between strip and grid representations.
    pub convert_ns: u64,
    /// High-water bytes of the fallback A\* search (part of MC).
    pub fallback_peak_bytes: usize,
}

/// Which internal search path produced a committed route. Recorded per
/// commit so the audit layer can trace a bad route back to the code path
/// that emitted it (conflict-provenance, DESIGN.md §"Auditing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerPath {
    /// The direct strip-level search at the request's emergence time.
    Direct,
    /// A strip-level retry with the departure postponed by `bump` steps.
    Retry {
        /// The start-time bump that made the request feasible.
        bump: Time,
    },
    /// The grid-level space-time A\* fallback (§VI remarks).
    Fallback,
    /// A route committed from outside via [`SrpPlanner::commit_route`].
    External,
}

impl core::fmt::Display for PlannerPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlannerPath::Direct => write!(f, "direct strip search"),
            PlannerPath::Retry { bump } => write!(f, "strip retry (departure +{bump})"),
            PlannerPath::Fallback => write!(f, "grid A* fallback"),
            PlannerPath::External => write!(f, "externally committed"),
        }
    }
}

/// Provenance of one committed route: the producing path plus the strip
/// chain and boundary crossings of its decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Which search path produced the route.
    pub path: PlannerPath,
    /// Strips traversed, in time order (consecutive duplicates collapsed).
    pub strips: Vec<StripId>,
    /// Directed boundary crossings `(from, to, departure time)`.
    pub crossings: Vec<(Cell, Cell, Time)>,
    /// Number of stored segments the route decomposed into.
    pub segments: usize,
}

impl core::fmt::Display for Provenance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "path={}, strips=[", self.path)?;
        for (i, s) in self.strips.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{s}")?;
        }
        write!(
            f,
            "], segments={}, crossings={}",
            self.segments,
            self.crossings.len()
        )
    }
}

/// Bookkeeping for one committed route, enough to retire it later and to
/// answer provenance queries while it is active.
#[derive(Debug, Clone)]
struct Committed {
    segs: Vec<(StripId, SegmentId, Segment)>,
    crossings: Vec<(Cell, Cell, Time)>,
    path: PlannerPath,
}

/// Sentinel node id for the search goal.
const GOAL: StripId = StripId::MAX;

/// A parent-chain entry of the cost-only inter-strip search: the hop's leg
/// lives within strip `prev`, ends at `exit_cell`, waits there until
/// `depart`, and (when `crossed`) steps into the keyed node at `depart+1`.
#[derive(Debug, Clone, Copy)]
struct ParentLite {
    prev: StripId,
    exit_cell: Cell,
    depart: Time,
    #[allow(dead_code)] // kept for debugging/assertions
    crossed: bool,
}

impl ParentLite {
    const NONE: ParentLite = ParentLite {
        prev: GOAL,
        exit_cell: Cell::new(0, 0),
        depart: 0,
        crossed: false,
    };
}

/// Heap key of the Phase-1 search: `(f, Reverse(g), strip, edge)`. Among
/// equal `f` the deepest entry wins; the trailing `(strip, edge)` pair
/// makes every live key unique — node entries carry `NO_EDGE`, deferred
/// edge entries carry the edge's adjacency index, and each `(strip, edge)`
/// is pushed at most once per search — so the pop order is a total order
/// over entries, independent of the heap's internal layout. That is what
/// lets the frontier batcher drain and re-push a cost level without
/// perturbing determinism (tie-breaks by node id, never by thread
/// arrival).
type SearchKey = (Time, core::cmp::Reverse<Time>, StripId, u32);

/// Sentinel edge index marking a node (settle) entry.
const NO_EDGE: u32 = u32::MAX;

/// Request-fixed context for resolving strip edges during one search.
#[derive(Clone, Copy)]
struct ResolveCtx {
    su: StripId,
    su_kind: StripKind,
    sd: StripId,
    sd_is_rack: bool,
    o: Cell,
    d: Cell,
    goal_slot: usize,
}

/// Resolve one edge's transit pair under all the rack rules; `None` when
/// the edge is unusable for this request. Pure in `(graph, ctx, u, k, gu)`
/// — shared by the pop loop and the frontier batcher so both see the same
/// edges.
fn resolve_edge(
    graph: &StripGraph,
    ctx: &ResolveCtx,
    u: StripId,
    k: usize,
    gu: Cell,
) -> Option<(StripId, bool, Cell, Cell)> {
    let edge = graph.edges(u)[k];
    let v = edge.to;
    let v_is_goal_rack = v == ctx.sd && ctx.sd_is_rack;
    if graph.strip(v).kind == StripKind::Rack && !v_is_goal_rack {
        return None;
    }
    let pair = if v_is_goal_rack {
        transit_to_cell(graph, u, &edge, ctx.d)
    } else {
        Some(graph.transition(u, &edge, gu))
    };
    let (g_u, g_v) = pair?;
    // Within a rack origin strip, no movement is possible.
    if ctx.su_kind == StripKind::Rack && u == ctx.su && g_u != ctx.o {
        return None;
    }
    Some((v, v_is_goal_rack, g_u, g_v))
}

/// One gathered edge evaluation: everything needed to price the edge
/// without touching search state, so a batch of these can run on the
/// engine's scoped threads.
struct EdgeJob {
    /// Dense directed-edge index — the cost-cache slot.
    eid: usize,
    /// Source strip (shard of the phase-A intra plan + exit-wait probe).
    u: StripId,
    /// Target strip (shard of the phase-B entry scan).
    v: StripId,
    /// Settle time of `u` — the leg's start time.
    settle_at: Time,
    /// Entry offset within `u`.
    from_off: i32,
    /// Transit-cell offset within `u`.
    exit_off: i32,
    /// Transit pair `g_u → g_v`.
    g_u: Cell,
    g_v: Cell,
    /// Offset of `g_v` within `v`.
    v_off: i32,
}

/// Phase-A job payload: the intra-strip leg to the transit cell.
struct LegQuery {
    t: Time,
    from: i32,
    to: i32,
}

/// Phase-B job payload: the boundary-crossing scan out of the transit
/// cell.
struct CrossQuery {
    arrive: Time,
    wait_limit: Time,
    g_u: Cell,
    g_v: Cell,
    v_off: i32,
}

/// Longest wait permissible at the transit cell `exit_off` of `store_u`
/// after arriving at `arrive` (shared by the serial `cross_cost` and the
/// batched phase A, so both paths price edges identically).
fn exit_wait_limit<S: SegmentStore>(
    store_u: &S,
    arrive: Time,
    exit_off: i32,
    max_entry_delay: Time,
) -> Time {
    let probe = Segment::wait(arrive, arrive + max_entry_delay, exit_off);
    match store_u.earliest_collision(&probe) {
        Some(c) => {
            debug_assert!(c.time > arrive, "transit cell reached collision-free");
            (c.time - 1 - arrive).min(max_entry_delay)
        }
        None => max_entry_delay,
    }
}

/// Earliest boundary departure in `[arrive, arrive + wait_limit]` for the
/// motion `g_u → g_v`, judged against the target strip's store and the
/// global crossings table (shared by the serial `cross_cost` and the
/// batched phase B). A departure is valid when nobody crosses the other
/// way at that instant and the entry point `(depart + 1, v_off)` is free.
fn cross_scan<S: SegmentStore>(
    store_v: &S,
    crossings: &HashSet<(Cell, Cell, Time)>,
    arrive: Time,
    wait_limit: Time,
    g_u: Cell,
    g_v: Cell,
    v_off: i32,
) -> Option<Time> {
    let deadline = arrive + wait_limit;
    let mut depart = arrive;
    while depart <= deadline {
        // Earliest free entry instant in the next strip ≥ depart + 1; the
        // single-pass store override replaces one point probe per delta.
        let entry = store_v.earliest_free_point(depart + 1, deadline + 1, v_off)?;
        let candidate = entry - 1;
        // Cross-strip swap: someone crossing the other way at `candidate`.
        if crossings.contains(&(g_v, g_u, candidate)) {
            depart = candidate + 1;
            continue;
        }
        return Some(candidate);
    }
    None
}

/// Reusable per-request search state, generation-stamped so consecutive
/// plans never re-clear the dense arrays.
#[derive(Debug, Default, Clone)]
struct SearchScratch {
    gen: u32,
    stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    dist_v: Vec<Time>,
    entry: Vec<Cell>,
    parent: Vec<ParentLite>,
    /// Per-directed-edge cost cache, generation-stamped like the node
    /// arrays and indexed by [`StripGraph::edge_index`]. Holds the result
    /// of one edge evaluation (`Some(arrival)` / `None` = infeasible) so
    /// frontier batches can pre-evaluate costs the pop loop reads later.
    /// Sound because an edge's evaluation inputs (source settle time and
    /// entry cell, the immutable stores, the crossings set) are all fixed
    /// for the remainder of one search.
    cost_stamp: Vec<u32>,
    cost_v: Vec<Option<Time>>,
}

impl SearchScratch {
    fn begin(&mut self, n: usize, m: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.settled_stamp.resize(n, 0);
            self.dist_v.resize(n, 0);
            self.entry.resize(n, Cell::new(0, 0));
            self.parent.resize(n, ParentLite::NONE);
        }
        if self.cost_stamp.len() < m {
            self.cost_stamp.resize(m, 0);
            self.cost_v.resize(m, None);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Extremely rare wrap: hard-reset the stamps.
            self.stamp.fill(0);
            self.settled_stamp.fill(0);
            self.cost_stamp.fill(0);
            self.gen = 1;
        }
    }

    #[inline]
    fn dist(&self, i: usize) -> Option<Time> {
        (self.stamp[i] == self.gen).then(|| self.dist_v[i])
    }

    #[inline]
    fn relax(&mut self, i: usize, t: Time, entry: Cell, p: ParentLite) {
        self.stamp[i] = self.gen;
        self.dist_v[i] = t;
        self.entry[i] = entry;
        self.parent[i] = p;
    }

    #[inline]
    fn settled(&self, i: usize) -> bool {
        self.settled_stamp[i] == self.gen
    }

    #[inline]
    fn settle(&mut self, i: usize) {
        self.settled_stamp[i] = self.gen;
    }

    /// Cached evaluation of directed edge `eid` this search, if any:
    /// `Some(result)` where `result` is the arrival time or `None` for an
    /// infeasible edge.
    #[inline]
    fn cached_cost(&self, eid: usize) -> Option<Option<Time>> {
        (self.cost_stamp[eid] == self.gen).then(|| self.cost_v[eid])
    }

    #[inline]
    fn cache_cost(&mut self, eid: usize, result: Option<Time>) {
        self.cost_stamp[eid] = self.gen;
        self.cost_v[eid] = result;
    }

    fn memory_bytes(&self) -> usize {
        carp_warehouse::memory::vec_bytes(&self.stamp)
            + carp_warehouse::memory::vec_bytes(&self.settled_stamp)
            + carp_warehouse::memory::vec_bytes(&self.dist_v)
            + carp_warehouse::memory::vec_bytes(&self.entry)
            + carp_warehouse::memory::vec_bytes(&self.parent)
            + carp_warehouse::memory::vec_bytes(&self.cost_stamp)
            + carp_warehouse::memory::vec_bytes(&self.cost_v)
    }
}

/// The Strip-based Route Planner, generic over the segment store so the
/// Fig. 22(b) ablation can swap the slope index for the naive ordered set.
#[derive(Debug, Clone)]
pub struct SrpPlanner<S: SegmentStore = SlopeIndexStore> {
    matrix: WarehouseMatrix,
    graph: StripGraph,
    /// The sharded segment-store engine owning all per-strip stores
    /// (lock-striped by `StripId % partitions`; see
    /// `SrpConfig::store_partitions`).
    engine: StoreEngine<S>,
    /// Directed boundary motions of active routes.
    crossings: HashSet<(Cell, Cell, Time)>,
    committed: HashMap<RequestId, Committed>,
    retire_queue: BTreeSet<(Time, RequestId)>,
    scratch: SearchScratch,
    /// Configuration.
    pub config: SrpConfig,
    /// Counters and TC breakdown.
    pub stats: SrpStats,
}

impl SrpPlanner<SlopeIndexStore> {
    /// Build an SRP planner with the slope-indexed store (the full method
    /// of the paper, §V-D).
    pub fn new(matrix: WarehouseMatrix, config: SrpConfig) -> Self {
        Self::with_store(matrix, config)
    }
}

impl<S: SegmentStore + Default> SrpPlanner<S> {
    /// Build an SRP planner with a custom segment store implementation.
    pub fn with_store(matrix: WarehouseMatrix, config: SrpConfig) -> Self {
        let graph = StripGraph::build(&matrix);
        let engine = match config.engine_threads {
            Some(t) => StoreEngine::with_parallelism(config.store_partitions, t),
            None => StoreEngine::new(config.store_partitions),
        };
        SrpPlanner {
            matrix,
            graph,
            engine,
            crossings: HashSet::new(),
            committed: HashMap::new(),
            retire_queue: BTreeSet::new(),
            scratch: SearchScratch::default(),
            config,
            stats: SrpStats::default(),
        }
    }

    /// The underlying strip graph (for inspection and the Table II stats).
    pub fn graph(&self) -> &StripGraph {
        &self.graph
    }

    /// The warehouse matrix the planner operates on.
    pub fn matrix(&self) -> &WarehouseMatrix {
        &self.matrix
    }

    /// Number of currently committed (active) routes.
    pub fn active_routes(&self) -> usize {
        self.committed.len()
    }

    /// Total segments across all strip stores.
    pub fn total_segments(&self) -> usize {
        self.engine.total_segments()
    }

    /// The segment-store engine (for inspection and its operation stats).
    pub fn engine(&self) -> &StoreEngine<S> {
        &self.engine
    }

    /// Run a closure against one strip's segment store under the engine's
    /// read lock (an empty stand-in when the strip carries no traffic).
    /// Replaces the pre-engine `store_for_strip` reference accessor, which
    /// cannot outlive a lock guard.
    pub fn with_store_for_strip<R>(&self, sid: StripId, f: impl FnOnce(&S) -> R) -> R {
        self.engine.with_shard(sid, f)
    }

    /// Byte breakdown of [`Planner::memory_bytes`] for diagnostics:
    /// `(stores, committed bookkeeping, crossings, scratch, graph)`.
    pub fn memory_breakdown(&self) -> (usize, usize, usize, usize, usize) {
        let stores: usize = self.engine.memory_bytes();
        let committed: usize = self
            .committed
            .values()
            .map(|c| memory::vec_bytes(&c.segs) + memory::vec_bytes(&c.crossings))
            .sum::<usize>()
            + memory::hashmap_bytes(&self.committed)
            + memory::btreeset_bytes(&self.retire_queue);
        (
            stores,
            committed,
            memory::hashset_bytes(&self.crossings),
            self.scratch.memory_bytes() + self.stats.fallback_peak_bytes,
            self.graph.memory_bytes(),
        )
    }

    /// Plan a route *without committing it* — the pure strip-level search
    /// (including the retry bumps, excluding the grid fallback). Used by
    /// the competitive-ratio experiment (Theorem 1), which compares single
    /// uncommitted routes against the space-time-optimal ones.
    pub fn plan_uncommitted(&mut self, req: &Request) -> Option<Route> {
        let mut route = self.plan_strips(req);
        if route.is_none() && !self.cancelled() {
            for bump in self.config.retry_bumps {
                let mut delayed = *req;
                delayed.t = req.t + bump;
                route = self.plan_strips(&delayed);
                if route.is_some() || self.cancelled() {
                    break;
                }
            }
        }
        route
    }

    /// Commit an externally produced route into the collision state (used
    /// by experiments that need to seed background traffic).
    pub fn commit_route(&mut self, id: RequestId, route: &Route) {
        self.commit(id, route, PlannerPath::External);
    }

    /// Provenance of a currently committed (not yet retired) route: the
    /// search path that produced it plus its strip chain and crossings.
    pub fn route_provenance(&self, id: RequestId) -> Option<Provenance> {
        self.committed.get(&id).map(|c| {
            let mut strips: Vec<StripId> = Vec::new();
            for &(sid, _, _) in &c.segs {
                if strips.last() != Some(&sid) {
                    strips.push(sid);
                }
            }
            Provenance {
                path: c.path,
                strips,
                crossings: c.crossings.clone(),
                segments: c.segs.len(),
            }
        })
    }

    #[inline]
    fn now(&self) -> Option<Instant> {
        self.config.instrument.then(Instant::now)
    }

    /// Whether the armed cancellation token (if any) has fired.
    #[inline]
    fn cancelled(&self) -> bool {
        self.config.cancel.as_ref().is_some_and(|t| t.fired())
    }

    #[inline]
    fn lap(&mut self, start: Option<Instant>, bucket: fn(&mut SrpStats) -> &mut u64) {
        if let Some(s) = start {
            *bucket(&mut self.stats) += s.elapsed().as_nanos() as u64;
        }
    }

    /// Earliest `t' ∈ [t, t + limit]` at which `(t', cell)` is free in the
    /// cell's strip store, or `None`.
    fn probe_free_time(&self, cell: Cell, t: Time, limit: Time) -> Option<Time> {
        let sid = self.graph.strip_of(&self.matrix, cell);
        let off = self.graph.strip(sid).offset_of(cell);
        self.engine
            .with_shard(sid, |store| store.earliest_free_point(t, t + limit, off))
    }

    /// Plan a route at strip level; `None` means the restricted search
    /// space has no solution and the fallback should take over.
    ///
    /// The search runs in two phases for speed: a cost-only time-dependent
    /// A*/Dijkstra over strips (no segment polylines are materialized —
    /// relaxations only need edge durations), then a reconstruction pass
    /// that re-plans the few legs along the winning chain with full
    /// polylines. Both phases query the same immutable stores, so the
    /// rebuilt legs are identical to the ones the search priced.
    fn plan_strips(&mut self, req: &Request) -> Option<Route> {
        let (o, d) = (req.origin, req.destination);
        let su = self.graph.strip_of(&self.matrix, o);
        let sd = self.graph.strip_of(&self.matrix, d);
        let start_t = self.probe_free_time(o, req.t, self.config.max_start_delay)?;

        if o == d {
            return Some(Route::stationary(start_t, o));
        }
        let su_kind = self.graph.strip(su).kind;
        if su == sd && su_kind == StripKind::Rack {
            return None; // cannot move along a rack strip
        }

        // Phase 1: cost-only time-dependent Dijkstra / A* (Algorithm 4).
        let use_h = self.config.use_heuristic;
        let h = move |cell: Cell| -> Time {
            if use_h {
                cell.manhattan(d)
            } else {
                0
            }
        };
        let n = self.graph.num_vertices();
        let goal_slot = n; // dense index of the GOAL pseudo-node
        self.scratch.begin(n + 1, self.graph.num_directed_edges());
        // Min-heap on (f, Reverse(g)): among equal f the deepest entry wins,
        // so the search dives along one optimal staircase instead of
        // flooding the whole equal-cost plateau between origin and
        // destination (consistent heuristic ⇒ optimality is unaffected).
        //
        // Edges are evaluated LAZILY: settling a strip pushes one cheap
        // optimistic entry per edge (`edge_k != NO_EDGE`), carrying the
        // admissible bound `at + |gu → transit| + 1`; the expensive
        // intra-strip + crossing evaluation runs only when that bound
        // reaches the top of the heap. Long full-width aisles have O(W)
        // edges, so eager evaluation would dominate the whole search.
        // With frontier batching on, reaching an unevaluated edge entry
        // first gathers every same-`f` edge entry in the heap and prices
        // them in one partition-parallel fan-out (DESIGN.md §11); the pop
        // loop below is unchanged either way.
        let mut heap: BinaryHeap<core::cmp::Reverse<SearchKey>> = BinaryHeap::new();
        self.scratch
            .relax(su as usize, start_t, o, ParentLite::NONE);
        heap.push(core::cmp::Reverse((
            start_t + h(o),
            core::cmp::Reverse(start_t),
            su,
            NO_EDGE,
        )));
        let sd_is_rack = self.graph.strip(sd).kind == StripKind::Rack;
        let ctx = ResolveCtx {
            su,
            su_kind,
            sd,
            sd_is_rack,
            o,
            d,
            goal_slot,
        };
        // Batched pre-evaluation only pays when the engine can actually fan
        // the batch out: more than one scoped thread AND more than one
        // partition to spread jobs over. Otherwise every speculative
        // evaluation is serial wasted work, so fall back to pure
        // one-edge-at-a-time relaxation (results are bit-identical either
        // way; this is strictly a cost gate).
        let batch_enabled = self.config.frontier_batch > 1
            && self.engine.threads() > 1
            && self.config.store_partitions > 1;

        // Honour a token that fired before the search even started (the
        // periodic poll below only triggers every 64 pops, which a short
        // search never reaches).
        if self.cancelled() {
            return None;
        }
        let mut pops: u64 = 0;
        while let Some(core::cmp::Reverse((f, core::cmp::Reverse(at), u, edge_k))) = heap.pop() {
            if u == GOAL {
                break;
            }
            // Cooperative cancellation: poll the armed token every 64 pops
            // (an atomic load + occasional `Instant::now`, far below the
            // cost of one edge evaluation). Bailing out mid-search commits
            // nothing — the caller sees a plain `None`.
            pops += 1;
            if pops & 63 == 0 && self.cancelled() {
                return None;
            }
            let ui = u as usize;

            if edge_k != NO_EDGE {
                // Deferred edge evaluation: `at` is the optimistic arrival.
                let gu = self.scratch.entry[ui];
                let settle_at = self.scratch.dist(ui).expect("edge source settled");
                let Some((v, v_is_goal_rack, g_u, g_v)) =
                    resolve_edge(&self.graph, &ctx, u, edge_k as usize, gu)
                else {
                    continue;
                };
                let vi = if v_is_goal_rack {
                    goal_slot
                } else {
                    v as usize
                };
                if self.scratch.settled(vi) || self.scratch.dist(vi).is_some_and(|dv| dv <= at) {
                    continue;
                }
                let eid = self.graph.edge_index(u, edge_k as usize);
                let result = match self.scratch.cached_cost(eid) {
                    Some(cached) => cached,
                    None => {
                        if batch_enabled {
                            // Gather every same-f edge entry still in the
                            // heap and price the lot in one fan-out; this
                            // entry's own evaluation lands in the cache.
                            self.relax_frontier_batch(&mut heap, &ctx, f);
                        }
                        match self.scratch.cached_cost(eid) {
                            Some(cached) => cached,
                            None => {
                                let r = self.eval_edge_serial(u, settle_at, gu, g_u, g_v);
                                self.scratch.cache_cost(eid, r);
                                r
                            }
                        }
                    }
                };
                let Some(arrival) = result else {
                    continue;
                };
                let depart = arrival - 1;
                if self.scratch.dist(vi).is_none_or(|dv| arrival < dv) {
                    let parent = ParentLite {
                        prev: u,
                        exit_cell: g_u,
                        depart,
                        crossed: true,
                    };
                    self.scratch
                        .relax(vi, arrival, if v_is_goal_rack { d } else { g_v }, parent);
                    let key = if v_is_goal_rack {
                        arrival
                    } else {
                        arrival + h(g_v)
                    };
                    let node = if v_is_goal_rack { GOAL } else { v };
                    heap.push(core::cmp::Reverse((
                        key,
                        core::cmp::Reverse(arrival),
                        node,
                        NO_EDGE,
                    )));
                }
                continue;
            }

            if self.scratch.settled(ui) || self.scratch.dist(ui) != Some(at) {
                continue;
            }
            self.scratch.settle(ui);
            self.stats.strips_settled += 1;
            let gu = self.scratch.entry[ui];

            // Final leg when the destination strip is an aisle.
            if u == sd {
                let strip = *self.graph.strip(u);
                if let Some(total) = self.intra_cost(u, at, strip.offset_of(gu), strip.offset_of(d))
                {
                    if self.scratch.dist(goal_slot).is_none_or(|g| total < g) {
                        self.scratch.relax(
                            goal_slot,
                            total,
                            d,
                            ParentLite {
                                prev: u,
                                exit_cell: d,
                                depart: total,
                                crossed: false,
                            },
                        );
                        heap.push(core::cmp::Reverse((
                            total,
                            core::cmp::Reverse(total),
                            GOAL,
                            NO_EDGE,
                        )));
                    }
                }
                continue; // never expand beyond the destination strip
            }

            let strip_u = *self.graph.strip(u);
            for k in 0..self.graph.edges(u).len() {
                let Some((v, v_is_goal_rack, g_u, g_v)) = resolve_edge(&self.graph, &ctx, u, k, gu)
                else {
                    continue;
                };
                let vi = if v_is_goal_rack {
                    goal_slot
                } else {
                    v as usize
                };
                if self.scratch.settled(vi) {
                    continue;
                }
                // Admissible bound: straight-line leg + one crossing step.
                let lb = at + strip_u.offset_of(gu).abs_diff(strip_u.offset_of(g_u)) + 1;
                if self.scratch.dist(vi).is_some_and(|dv| dv <= lb) {
                    continue;
                }
                let key = if v_is_goal_rack { lb } else { lb + h(g_v) };
                heap.push(core::cmp::Reverse((
                    key,
                    core::cmp::Reverse(lb),
                    u,
                    k as u32,
                )));
            }
        }

        let total = self.scratch.dist(goal_slot)?;
        // Phase 2: reconstruct the leg chain (line 24 of Algorithm 4) by
        // walking the parent pointers and re-planning each leg in full.
        let convert_t = self.now();
        let mut hops: Vec<ParentLite> = Vec::new();
        let mut node = goal_slot;
        loop {
            let p = self.scratch.parent[node];
            debug_assert!(p.prev != GOAL, "goal is connected to the origin");
            hops.push(p);
            if p.prev == su {
                break;
            }
            node = p.prev as usize;
        }
        hops.reverse();
        self.lap(convert_t, |s| &mut s.convert_ns);

        let mut legs: Vec<(StripId, IntraRoute)> = Vec::with_capacity(hops.len() + 1);
        for hop in &hops {
            let u = hop.prev;
            let strip = *self.graph.strip(u);
            let enter_t = self.scratch.dist(u as usize).expect("on chain");
            let gu = self.scratch.entry[u as usize];
            let mut leg = self
                .intra_full(
                    u,
                    enter_t,
                    strip.offset_of(gu),
                    strip.offset_of(hop.exit_cell),
                )
                .expect("cost phase succeeded on this leg");
            debug_assert!(leg.arrive <= hop.depart);
            if leg.arrive < hop.depart {
                let off = strip.offset_of(hop.exit_cell);
                leg.segments
                    .push(Segment::wait(leg.arrive, hop.depart, off));
                leg.arrive = hop.depart;
            }
            legs.push((u, leg));
        }
        if sd_is_rack {
            // The rack destination is entered by the final crossing; it
            // contributes a single point of occupancy.
            legs.push((
                sd,
                IntraRoute {
                    segments: vec![Segment::point(total, self.graph.strip(sd).offset_of(d))],
                    enter: total,
                    arrive: total,
                },
            ));
        }

        let convert_t = self.now();
        let route = compose(&self.graph, &legs);
        self.lap(convert_t, |s| &mut s.convert_ns);
        debug_assert_eq!(route.destination(), d);
        debug_assert_eq!(route.end_time(), total);
        Some(route)
    }

    /// Instrumented cost-only intra-strip query (search phase).
    fn intra_cost(&mut self, strip: StripId, t: Time, from: i32, to: i32) -> Option<Time> {
        let started = self.now();
        self.stats.intra_calls += 1;
        let intra = self.config.intra;
        let arrive = self
            .engine
            .with_shard(strip, |s| plan_within_cost(s, t, from, to, &intra));
        self.lap(started, |s| &mut s.intra_ns);
        arrive
    }

    /// Instrumented full intra-strip planning (reconstruction phase).
    fn intra_full(&mut self, strip: StripId, t: Time, from: i32, to: i32) -> Option<IntraRoute> {
        let started = self.now();
        let intra = self.config.intra;
        let leg = self
            .engine
            .with_shard(strip, |s| plan_within(s, t, from, to, &intra));
        self.lap(started, |s| &mut s.intra_ns);
        leg
    }

    /// Find the earliest boundary departure `>= arrive` for the motion
    /// `g_u -> g_v` (cost phase: no leg materialization). Delegates to the
    /// same [`exit_wait_limit`] / [`cross_scan`] helpers as the batched
    /// frontier evaluation, so both paths price edges identically.
    fn cross_cost(
        &mut self,
        u: StripId,
        arrive: Time,
        exit_off: i32,
        g_u: Cell,
        g_v: Cell,
    ) -> Option<Time> {
        let started = self.now();
        let max_entry_delay = self.config.max_entry_delay;
        // Exit-wait probe, then entry scan: two *sequential* shard borrows
        // — never nested, so the engine's partition locks cannot
        // self-deadlock even when strips `u` and `v` share a partition.
        let wait_limit = self.engine.with_shard(u, |store_u| {
            exit_wait_limit(store_u, arrive, exit_off, max_entry_delay)
        });
        let v = self.graph.strip_of(&self.matrix, g_v);
        let v_off = self.graph.strip(v).offset_of(g_v);
        let crossings = &self.crossings;
        let found = self.engine.with_shard(v, |store_v| {
            cross_scan(store_v, crossings, arrive, wait_limit, g_u, g_v, v_off)
        });
        self.lap(started, |s| &mut s.intra_ns);
        found
    }

    /// Price one edge the serial way: intra-strip leg to the transit cell,
    /// then the boundary-crossing scan. Returns the arrival time in the
    /// next strip (`depart + 1`), or `None` when the edge is infeasible at
    /// this settle time.
    fn eval_edge_serial(
        &mut self,
        u: StripId,
        settle_at: Time,
        gu: Cell,
        g_u: Cell,
        g_v: Cell,
    ) -> Option<Time> {
        let strip_u = *self.graph.strip(u);
        let arrive =
            self.intra_cost(u, settle_at, strip_u.offset_of(gu), strip_u.offset_of(g_u))?;
        let depart = self.cross_cost(u, arrive, strip_u.offset_of(g_u), g_u, g_v)?;
        Some(depart + 1)
    }

    /// Batched frontier expansion (DESIGN.md §11): drain every deferred
    /// edge entry at cost level `f0` from the heap, price the eligible
    /// uncached ones in two partition-parallel [`StoreEngine::eval_many`]
    /// fan-outs (phase A: intra leg + exit-wait limit on shard `u`; phase
    /// B: crossing scan on shard `v`), commit all results to the per-search
    /// cost cache, and push the drained entries back unchanged.
    ///
    /// Determinism: the heap leaves this function with exactly the entry
    /// multiset it had on entry, and live heap keys are unique
    /// ([`SearchKey`] docs), so the pop order is unchanged. Each evaluation
    /// is a pure function of inputs frozen for the rest of the search (the
    /// source strip's settle time and entry cell, the stores — mutated only
    /// between searches — and the crossings set), so a cached result equals
    /// what the pop loop would compute on the spot. The eligibility filters
    /// (`settled(v)`, `dist(v) <= bound`) are monotone — they only skip
    /// evaluations whose pop-time guards would discard them anyway. Extra
    /// speculative evaluations are wasted work at worst, never a route
    /// change.
    fn relax_frontier_batch(
        &mut self,
        heap: &mut BinaryHeap<core::cmp::Reverse<SearchKey>>,
        ctx: &ResolveCtx,
        f0: Time,
    ) {
        // Per-batch cancellation poll (the satellite hook): a fired token
        // skips the speculative fan-out entirely; the pop loop notices the
        // cancellation within its next poll window and unwinds.
        if self.cancelled() {
            return;
        }
        let cap = self.config.frontier_batch;
        let mut stash: Vec<SearchKey> = Vec::new();
        let mut jobs: Vec<EdgeJob> = Vec::new();
        let mut skips: usize = 0;
        {
            let graph = &self.graph;
            let scratch = &self.scratch;
            let use_h = self.config.use_heuristic;
            let skips = &mut skips;
            let mut consider = |key: SearchKey, jobs: &mut Vec<EdgeJob>| {
                let (_, core::cmp::Reverse(at), u, edge_k) = key;
                if u == GOAL || edge_k == NO_EDGE {
                    return;
                }
                let eid = graph.edge_index(u, edge_k as usize);
                if scratch.cached_cost(eid).is_some() {
                    return;
                }
                let ui = u as usize;
                let gu = scratch.entry[ui];
                let Some(settle_at) = scratch.dist(ui) else {
                    return;
                };
                let Some((v, v_is_goal_rack, g_u, g_v)) =
                    resolve_edge(graph, ctx, u, edge_k as usize, gu)
                else {
                    return;
                };
                // Monotone guards: a settled target stays settled and dist
                // only decreases, so anything skipped here would also be
                // skipped by the pop-time guards.
                let vi = if v_is_goal_rack {
                    ctx.goal_slot
                } else {
                    v as usize
                };
                if scratch.settled(vi) || scratch.dist(vi).is_some_and(|dv| dv <= at) {
                    return;
                }
                // Frontier gather skip: if the target is already priced at
                // this batch's f-value, its pending *node* entry
                // `(f0, Reverse(dv), v, NO_EDGE)` orders strictly before
                // this edge entry (`dv > at` from the guard above, and the
                // heap breaks f-ties by larger g first), so `v` settles
                // before the edge entry resurfaces and the pop-time settled
                // guard discards it unevaluated. Pricing the edge now is
                // provably wasted work — count it instead of jobbing it.
                if let Some(dv) = scratch.dist(vi) {
                    let h_v = if use_h {
                        scratch.entry[vi].manhattan(ctx.d)
                    } else {
                        0
                    };
                    if dv + h_v == f0 {
                        *skips += 1;
                        return;
                    }
                }
                let strip_u = graph.strip(u);
                let v_strip = if v_is_goal_rack { ctx.sd } else { v };
                debug_assert!(graph.strip(v_strip).contains(g_v));
                jobs.push(EdgeJob {
                    eid,
                    u,
                    v: v_strip,
                    settle_at,
                    from_off: strip_u.offset_of(gu),
                    exit_off: strip_u.offset_of(g_u),
                    g_u,
                    g_v,
                    v_off: graph.strip(v_strip).offset_of(g_v),
                });
            };
            while jobs.len() < cap {
                let Some(&core::cmp::Reverse(key)) = heap.peek() else {
                    break;
                };
                if key.0 != f0 {
                    break;
                }
                heap.pop();
                stash.push(key);
                consider(key, &mut jobs);
            }
        }
        for key in stash {
            heap.push(core::cmp::Reverse(key));
        }
        self.stats.frontier_skips += skips;
        if jobs.is_empty() {
            return;
        }

        let started = self.now();
        // Phase A (shard u): intra-strip leg to the transit cell plus the
        // exit-wait limit. Phase B (shard v): the crossing scan for the
        // survivors. Each phase borrows one shard per job — never two at
        // once — preserving the engine's no-nested-locks invariant.
        let intra = self.config.intra;
        let max_entry_delay = self.config.max_entry_delay;
        let a_jobs: Vec<(ShardKey, LegQuery)> = jobs
            .iter()
            .map(|j| {
                (
                    j.u,
                    LegQuery {
                        t: j.settle_at,
                        from: j.from_off,
                        to: j.exit_off,
                    },
                )
            })
            .collect();
        let a_out = self.engine.eval_many(&a_jobs, |store, q: &LegQuery| {
            plan_within_cost(store, q.t, q.from, q.to, &intra).map(|arrive| {
                (
                    arrive,
                    exit_wait_limit(store, arrive, q.to, max_entry_delay),
                )
            })
        });
        let mut b_slots: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut b_jobs: Vec<(ShardKey, CrossQuery)> = Vec::with_capacity(jobs.len());
        for (i, a) in a_out.iter().enumerate() {
            if let Some((arrive, wait_limit)) = *a {
                b_slots.push(i);
                b_jobs.push((
                    jobs[i].v,
                    CrossQuery {
                        arrive,
                        wait_limit,
                        g_u: jobs[i].g_u,
                        g_v: jobs[i].g_v,
                        v_off: jobs[i].v_off,
                    },
                ));
            }
        }
        let crossings = &self.crossings;
        let b_out = self.engine.eval_many(&b_jobs, |store, q: &CrossQuery| {
            cross_scan(
                store,
                crossings,
                q.arrive,
                q.wait_limit,
                q.g_u,
                q.g_v,
                q.v_off,
            )
        });
        // Serial commit: results land in the cache by job order (the order
        // is immaterial — one slot per edge — but the commit never runs on
        // worker threads).
        let mut results: Vec<Option<Time>> = vec![None; jobs.len()];
        for (slot, depart) in b_slots.into_iter().zip(b_out) {
            results[slot] = depart.map(|dep| dep + 1);
        }
        self.lap(started, |s| &mut s.intra_ns);
        for (job, result) in jobs.iter().zip(results) {
            self.scratch.cache_cost(job.eid, result);
        }
        self.stats.intra_calls += jobs.len();
        self.stats.frontier_batches += 1;
        self.stats.frontier_evals += jobs.len();
    }

    /// Grid-level fallback (§VI remarks): rebuild a reservation table from
    /// the committed segments and run space-time A\*.
    fn plan_fallback(&mut self, req: &Request) -> Option<Route> {
        let mut rt = ReservationTable::new();
        for (id, c) in &self.committed {
            for &(sid, _, seg) in &c.segs {
                let strip = self.graph.strip(sid);
                let mut prev: Option<(Time, Cell)> = None;
                for (t, off) in seg.occupancy() {
                    let cell = strip.cell_at(off);
                    rt.reserve(&Route::stationary(t, cell), *id);
                    if let Some((pt, pc)) = prev {
                        if pc != cell {
                            rt.reserve(&Route::new(pt, vec![pc, cell]), *id);
                        }
                    }
                    prev = Some((t, cell));
                }
            }
            for &(from, to, t) in &c.crossings {
                rt.reserve(&Route::new(t, vec![from, to]), *id);
            }
        }
        let mut astar = SpaceTimeAStar::new(self.config.fallback);
        let r = astar.plan(&self.matrix, &rt, None, req.origin, req.destination, req.t);
        self.stats.fallback_peak_bytes = self.stats.fallback_peak_bytes.max(astar.stats.peak_bytes);
        r
    }

    /// Commit a planned route: decompose it and insert its segments and
    /// crossings into the collision state, tagged with the search path that
    /// produced it.
    fn commit(&mut self, id: RequestId, route: &Route, path: PlannerPath) {
        let started = self.now();
        let dec = decompose(&self.matrix, &self.graph, route);
        // Pre-commit validation as one batched probe over the whole
        // candidate route (its segments span many strips, so this is the
        // engine's parallel fan-out path on multi-core hosts). The check is
        // always on: a colliding commit means a planner bug, and one batch
        // probe per commit is noise next to the search that produced it.
        let hits = self.engine.collide_many(&dec.segments);
        for ((sid, seg), hit) in dec.segments.iter().zip(&hits) {
            assert!(
                hit.is_none(),
                "committing colliding segment {seg} in strip {sid}"
            );
        }
        let mut segs = Vec::with_capacity(dec.segments.len());
        for (sid, seg) in dec.segments {
            let handle = self.engine.insert(sid, seg);
            segs.push((sid, handle, seg));
        }
        for &c in &dec.crossings {
            self.crossings.insert(c);
        }
        self.committed.insert(
            id,
            Committed {
                segs,
                crossings: dec.crossings,
                path,
            },
        );
        self.retire_queue.insert((route.end_time(), id));
        self.lap(started, |s| &mut s.convert_ns);
    }

    /// Remove a batch of committed routes from the collision state. All
    /// their segments are retired through one [`StoreEngine::remove_batch`]
    /// call — per-shard removal lists applied under a single lock
    /// acquisition each — instead of one map traversal per segment. Ids
    /// with no committed route (already retired, cancelled) are skipped.
    fn retire_batch(&mut self, ids: &[RequestId]) {
        let mut removals: Vec<(ShardKey, SegmentId, Segment)> = Vec::new();
        for id in ids {
            if let Some(c) = self.committed.remove(id) {
                removals.extend(c.segs);
                for key in c.crossings {
                    self.crossings.remove(&key);
                }
            }
        }
        if removals.is_empty() {
            return;
        }
        let removed = self.engine.remove_batch(&removals);
        debug_assert_eq!(removed, removals.len(), "segment missing on retire");
    }
}

impl<S: SegmentStore + Default + Clone> SpeculativePlanner for SrpPlanner<S> {
    fn fork(&self) -> Self {
        self.clone()
    }

    /// The exact [`Planner::plan`] search — direct strip search, the
    /// postponed-departure retries, then the grid A\* fallback — without
    /// the commit. A replica synced to the same committed state produces
    /// the bit-identical route `plan` would commit.
    fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
        let mut route = self.plan_uncommitted(req);
        if route.is_none() && self.config.use_fallback {
            route = self.plan_fallback(req);
        }
        route
    }

    fn adopt(&mut self, id: RequestId, route: &Route) {
        self.commit_route(id, route);
    }
}

/// The transit pair of `edge` whose target-strip cell is exactly `target`
/// (used for rack destinations), or `None` when this edge cannot deliver
/// the robot adjacent to `target`.
fn transit_to_cell(
    graph: &StripGraph,
    u: StripId,
    edge: &StripEdge,
    target: Cell,
) -> Option<(Cell, Cell)> {
    match edge.geom {
        EdgeGeom::Perpendicular { u_cell, v_cell } | EdgeGeom::Collinear { u_cell, v_cell } => {
            (v_cell == target).then_some((u_cell, v_cell))
        }
        EdgeGeom::Lateral { lo, hi } => {
            let su = graph.strip(u);
            let sv = graph.strip(edge.to);
            debug_assert!(sv.contains(target));
            let coord = match sv.dir {
                crate::strip_graph::StripDir::Latitudinal => target.col,
                crate::strip_graph::StripDir::Longitudinal => target.row,
            };
            if !(lo..=hi).contains(&coord) {
                return None;
            }
            let u_cell = match su.dir {
                crate::strip_graph::StripDir::Latitudinal => Cell::new(su.alpha.row, coord),
                crate::strip_graph::StripDir::Longitudinal => Cell::new(coord, su.alpha.col),
            };
            Some((u_cell, target))
        }
    }
}

impl<S: SegmentStore + Default> Planner for SrpPlanner<S> {
    fn name(&self) -> &'static str {
        "SRP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        // inter_ns is the strip-level search time *excluding* the intra and
        // conversion buckets, so the three Fig. 22(a) components add up to
        // the whole.
        let inter_t = self.now();
        let sub_before = self.stats.intra_ns + self.stats.convert_ns;
        let mut path = PlannerPath::Direct;
        let mut strip_route = self.plan_strips(req);
        if strip_route.is_none() && !self.cancelled() {
            // Strip-level retries with postponed departure (see
            // `SrpConfig::retry_bumps`). A fired cancellation token skips
            // the remaining bumps — the request is being abandoned, not
            // rescued.
            for bump in self.config.retry_bumps {
                let mut delayed = *req;
                delayed.t = req.t + bump;
                strip_route = self.plan_strips(&delayed);
                if strip_route.is_some() {
                    self.stats.retries += 1;
                    path = PlannerPath::Retry { bump };
                    break;
                }
                if self.cancelled() {
                    break;
                }
            }
        }
        if let Some(started) = inter_t {
            let sub = (self.stats.intra_ns + self.stats.convert_ns) - sub_before;
            self.stats.inter_ns += (started.elapsed().as_nanos() as u64).saturating_sub(sub);
        }
        let route = match strip_route {
            Some(r) => Some(r),
            None if self.config.use_fallback && !self.cancelled() => {
                let r = self.plan_fallback(req);
                if r.is_some() {
                    self.stats.fallbacks += 1;
                    path = PlannerPath::Fallback;
                }
                r
            }
            None => None,
        };
        match route {
            Some(route) => {
                debug_assert!(
                    route.validate(&self.matrix).is_ok(),
                    "invalid route planned"
                );
                self.commit(req.id, &route, path);
                self.stats.planned += 1;
                PlanOutcome::Planned(route)
            }
            None => {
                self.stats.infeasible += 1;
                PlanOutcome::Infeasible
            }
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        // Retire routes that finished strictly before `now`; their segments
        // can no longer collide with requests emerging at `t ≥ now`. The
        // whole batch of expirations goes through one engine removal pass.
        let mut expired: Vec<RequestId> = Vec::new();
        while let Some(&(end, id)) = self.retire_queue.iter().next() {
            if end >= now {
                break;
            }
            self.retire_queue.remove(&(end, id));
            expired.push(id);
        }
        self.retire_batch(&expired);
        Vec::new()
    }

    fn provenance(&self, id: RequestId) -> Option<String> {
        self.route_provenance(id).map(|p| p.to_string())
    }

    fn arm_cancel(&mut self, token: Option<carp_warehouse::planner::CancelToken>) {
        self.config.cancel = token;
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        if self.committed.contains_key(&id) {
            self.retire_queue.retain(|&(_, rid)| rid != id);
            self.retire_batch(&[id]);
            true
        } else {
            false
        }
    }

    fn engine_metrics(&self) -> Option<EngineMetrics> {
        let stats = self.engine.stats();
        Some(EngineMetrics {
            probe_batches: stats.probe_batches,
            probe_queries: stats.probe_queries,
            probe_parallelism: stats.probe_parallelism(),
            probe_parallel_share: stats.parallel_share(),
            retire_batch_size: stats.mean_retire_batch(),
            eval_batches: stats.eval_batches,
            eval_jobs: stats.eval_jobs,
            eval_parallel_share: stats.eval_parallel_share(),
            soft_bookings: 0,
            window_debt: 0,
        })
    }

    fn memory_bytes(&self) -> usize {
        let stores: usize = self.engine.memory_bytes();
        let committed: usize = self
            .committed
            .values()
            .map(|c| memory::vec_bytes(&c.segs) + memory::vec_bytes(&c.crossings))
            .sum();
        stores
            + committed
            + memory::hashset_bytes(&self.crossings)
            + memory::hashmap_bytes(&self.committed)
            + memory::btreeset_bytes(&self.retire_queue)
            + self.scratch.memory_bytes()
            + self.stats.fallback_peak_bytes
            + self.graph.memory_bytes()
    }
}
