//! Intra-strip route planning (§V-C, Algorithm 2): backtracking search for
//! the shortest collision-free polyline from one grid number to another
//! within a strip.
//!
//! The search greedily moves towards the destination; when the move would
//! collide at time `c` (earliest collision from the segment store), it
//! stops right before the collision, waits, and tries again — recursing
//! with longer waits when necessary. Moving *backward* (away from the
//! destination) is prohibited for efficiency (§V-C), which is one of the
//! three sub-optimality sources analysed in §VII-A; infeasibility under
//! this restriction is handled by the caller's A\* fallback (§VI remarks).
//!
//! Unlike the paper's pseudocode, candidate segments are **not** inserted
//! into the shared store during the search: a robot's own consecutive
//! segments can never conflict with each other, so the store only ever
//! holds committed routes and the search is read-only (see DESIGN.md §6,
//! "Query/commit split").

use carp_geometry::store::SegmentStore;
use carp_geometry::Segment;
use carp_warehouse::types::Time;

/// Limits on the backtracking search.
#[derive(Debug, Clone, Copy)]
pub struct IntraConfig {
    /// Longest single wait the search will consider at one stop point.
    pub max_wait: Time,
    /// Cap on search nodes (stop points examined) before giving up.
    pub max_nodes: usize,
}

impl Default for IntraConfig {
    fn default() -> Self {
        IntraConfig {
            max_wait: 48,
            max_nodes: 512,
        }
    }
}

/// A planned intra-strip route: a polyline of segments from the origin
/// grid number to the destination, consecutive in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntraRoute {
    /// The polyline, ordered by time; adjacent segments share endpoints.
    pub segments: Vec<Segment>,
    /// Time the origin grid is first occupied.
    pub enter: Time,
    /// Time the destination grid is reached.
    pub arrive: Time,
}

impl IntraRoute {
    /// Duration `arrive − enter`.
    pub fn duration(&self) -> Time {
        self.arrive - self.enter
    }

    /// The destination grid number.
    pub fn destination(&self) -> i32 {
        self.segments.last().expect("non-empty").s1
    }

    /// Check internal consistency: contiguous, valid segments.
    pub fn is_well_formed(&self) -> bool {
        if self.segments.is_empty() {
            return false;
        }
        if self.segments[0].t0 != self.enter || self.segments.last().unwrap().t1 != self.arrive {
            return false;
        }
        self.segments.iter().all(|s| s.validate())
            && self
                .segments
                .windows(2)
                .all(|w| w[0].t1 == w[1].t0 && w[0].s1 == w[1].s0)
    }
}

/// Plan a collision-free intra-strip route from grid number `from` to `to`
/// starting at time `t`, against the committed segments in `store`.
///
/// Precondition: `(t, from)` itself is collision-free (guaranteed by the
/// caller, who checked the entry point — see the planner's entry probing).
/// Returns `None` when no route exists within the configured limits.
pub fn plan_within<S: SegmentStore>(
    store: &S,
    t: Time,
    from: i32,
    to: i32,
    config: &IntraConfig,
) -> Option<IntraRoute> {
    debug_assert!(
        store.earliest_collision(&Segment::point(t, from)).is_none(),
        "entry point (t={t}, s={from}) is contested; caller must probe first"
    );
    if from == to {
        return Some(IntraRoute {
            segments: vec![Segment::point(t, from)],
            enter: t,
            arrive: t,
        });
    }
    let mut segments = Vec::new();
    let mut nodes = 0usize;
    let arrive = backtrack::<S, true>(store, t, from, to, config, &mut nodes, &mut segments)?;
    let route = IntraRoute {
        segments,
        enter: t,
        arrive,
    };
    debug_assert!(route.is_well_formed());
    Some(route)
}

/// Arrival time of [`plan_within`] without materializing the polyline —
/// the allocation-free query used by the inter-strip search, whose
/// relaxations only need the edge *weight* (§VI); the winning chain is
/// re-planned with [`plan_within`] afterwards. Deterministic: returns
/// exactly `plan_within(..).map(|r| r.arrive)`.
pub fn plan_within_cost<S: SegmentStore>(
    store: &S,
    t: Time,
    from: i32,
    to: i32,
    config: &IntraConfig,
) -> Option<Time> {
    if from == to {
        return Some(t);
    }
    // Fast path: nothing committed in this strip.
    if store.is_empty() {
        return Some(t + from.abs_diff(to));
    }
    let mut nodes = 0usize;
    let mut scratch = Vec::new();
    backtrack::<S, false>(store, t, from, to, config, &mut nodes, &mut scratch)
}

/// The recursive backtracking of Algorithm 2, returning the arrival time
/// at `d`. With `COLLECT`, `out` holds the chosen polyline on success and
/// is left untouched on failure; without it, no segments are materialized.
fn backtrack<S: SegmentStore, const COLLECT: bool>(
    store: &S,
    t: Time,
    p: i32,
    d: i32,
    config: &IntraConfig,
    nodes: &mut usize,
    out: &mut Vec<Segment>,
) -> Option<Time> {
    *nodes += 1;
    if *nodes > config.max_nodes {
        return None;
    }
    if p == d {
        // Trivial leg; only reachable from plan_within's `from == to` guard
        // or a recursion that stopped exactly at the destination.
        return Some(t);
    }
    // Greedy move towards the destination (lines 8–9).
    let full = Segment::travel(t, p, d);
    let Some(collision) = store.earliest_collision(&full) else {
        if COLLECT {
            out.push(full);
        }
        return Some(full.t1); // lines 10–12
    };
    // Stop right before the collision (line 18). For a vertex conflict at
    // time `c` the last safe instant on the move is `c − 1`; for a swap the
    // conflict is the motion `c → c + 1` itself, so occupying the stop
    // point at `c` is still safe.
    let c = collision.time;
    let stop_t = match collision.kind {
        carp_geometry::CollisionKind::Vertex => {
            debug_assert!(c > t, "entry point was contested");
            c - 1
        }
        carp_geometry::CollisionKind::Swap => c,
    };
    let dir = if d > p { 1 } else { -1 };
    let p_stop = p + dir * (stop_t - t) as i32;
    let moved = stop_t > t;
    if COLLECT && moved {
        out.push(Segment::travel(t, p, p_stop));
    }
    if p_stop == d {
        // The collision happens beyond the destination — cannot occur since
        // the full segment ends at d; defensive only.
        if COLLECT && !moved {
            out.push(Segment::point(t, p));
        }
        return Some(stop_t);
    }
    // Longest permissible wait at the stop point: until someone else needs
    // this grid (waits are slope-0, so any collision against them is a
    // vertex conflict at the intruder's arrival).
    let probe = Segment::wait(stop_t, stop_t + config.max_wait, p_stop);
    let max_tau = match store.earliest_collision(&probe) {
        Some(c2) => {
            debug_assert!(c2.time > stop_t, "stop point reached collision-free");
            (c2.time - 1 - stop_t).min(config.max_wait)
        }
        None => config.max_wait,
    };
    // Try waits of increasing length (lines 16–21).
    for tau in 1..=max_tau {
        if COLLECT {
            out.push(Segment::wait(stop_t, stop_t + tau, p_stop));
        }
        if let Some(arr) =
            backtrack::<S, COLLECT>(store, stop_t + tau, p_stop, d, config, nodes, out)
        {
            return Some(arr);
        }
        if COLLECT {
            out.pop();
        }
    }
    if COLLECT && moved {
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_geometry::{NaiveStore, SlopeIndexStore};

    fn assert_route_clear<S: SegmentStore>(store: &S, r: &IntraRoute) {
        for seg in &r.segments {
            assert_eq!(
                store.earliest_collision(seg),
                None,
                "planned segment {seg} collides"
            );
        }
    }

    #[test]
    fn unobstructed_is_straight_line() {
        let store = NaiveStore::new();
        let r = plan_within(&store, 5, 2, 9, &IntraConfig::default()).expect("route");
        assert_eq!(r.segments, vec![Segment::travel(5, 2, 9)]);
        assert_eq!(r.duration(), 7);
    }

    #[test]
    fn same_grid_is_a_point() {
        let store = NaiveStore::new();
        let r = plan_within(&store, 3, 4, 4, &IntraConfig::default()).expect("route");
        assert_eq!(r.segments, vec![Segment::point(3, 4)]);
        assert_eq!(r.duration(), 0);
    }

    #[test]
    fn waits_out_a_crossing_waiter() {
        let mut store = SlopeIndexStore::new();
        // Someone parks at grid 5 during t = 0..7.
        store.insert(Segment::wait(0, 7, 5));
        let r = plan_within(&store, 0, 0, 9, &IntraConfig::default()).expect("route");
        assert_route_clear(&store, &r);
        assert_eq!(r.destination(), 9);
        // Shortest possible: move to 4 (t=4), wait until the parker leaves
        // (must reach 5 no earlier than t=8), then continue.
        assert_eq!(r.arrive, 12);
    }

    #[test]
    fn dodges_oncoming_route_via_wait() {
        let mut store = SlopeIndexStore::new();
        // Oncoming robot sweeps 9 → 0 during t = 0..9.
        store.insert(Segment::travel(0, 9, 0));
        let r = plan_within(&store, 0, 0, 9, &IntraConfig::default());
        // Forward-only search cannot pass an oncoming robot on a single
        // line without a pull-off — it must be infeasible or wait until the
        // sweep finishes... waiting at 0 collides when the sweeper arrives
        // at 0 (t=9). Hence: infeasible.
        assert!(
            r.is_none(),
            "head-on on one line is unresolvable forward-only"
        );
    }

    #[test]
    fn follows_leader_without_collision() {
        let mut store = SlopeIndexStore::new();
        // A leader moves 0 → 9 starting at t=0.
        store.insert(Segment::travel(0, 0, 9));
        // We start one step behind at the same time.
        let r = plan_within(&store, 1, 0, 9, &IntraConfig::default()).expect("route");
        assert_route_clear(&store, &r);
        assert_eq!(r.arrive, 10, "follows one step behind, no extra wait");
    }

    #[test]
    fn two_stage_wait_for_two_crossers() {
        let mut store = SlopeIndexStore::new();
        // Crosser A occupies grid 3 at t=3 (point), crosser B occupies
        // grid 6 at t=8.
        store.insert(Segment::point(3, 3));
        store.insert(Segment::point(8, 6));
        let r = plan_within(&store, 0, 0, 9, &IntraConfig::default()).expect("route");
        assert_route_clear(&store, &r);
        assert_eq!(r.destination(), 9);
        // Optimal forward-only: some waiting occurs, arrival is delayed
        // beyond the unobstructed 9.
        assert!(r.arrive > 9);
        assert!(r.is_well_formed());
    }

    #[test]
    fn backward_movement_supported() {
        let mut store = SlopeIndexStore::new();
        store.insert(Segment::wait(0, 4, 5));
        // Plan from 9 down to 0 (slope −1 route) around the parked robot.
        let r = plan_within(&store, 0, 9, 0, &IntraConfig::default()).expect("route");
        assert_route_clear(&store, &r);
        assert_eq!(r.destination(), 0);
    }

    #[test]
    fn node_budget_failure_leaves_no_garbage() {
        let mut store = SlopeIndexStore::new();
        // A wall of parked robots that never leaves.
        for t in 0..20 {
            store.insert(Segment::wait(t * 10, t * 10 + 10, 5));
        }
        let cfg = IntraConfig {
            max_wait: 8,
            max_nodes: 16,
        };
        assert!(plan_within(&store, 0, 0, 9, &cfg).is_none());
    }

    #[test]
    fn naive_and_indexed_stores_agree() {
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        let population = [
            Segment::wait(2, 6, 4),
            Segment::travel(0, 9, 3),
            Segment::point(5, 7),
            Segment::travel(4, 0, 6),
        ];
        for s in population {
            naive.insert(s);
            index.insert(s);
        }
        let a = plan_within(&naive, 0, 0, 9, &IntraConfig::default());
        let b = plan_within(&index, 0, 0, 9, &IntraConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn planned_route_is_discretely_collision_free() {
        // Ground-truth check: expand the planned polyline and every stored
        // segment to discrete occupancy and verify Definition 3 directly.
        let mut store = SlopeIndexStore::new();
        // Two parked robots with staggered time windows force two separate
        // waiting phases. (An oncoming full-line sweep would be infeasible
        // forward-only — that is the §VII-A backtracking restriction.)
        let population = [Segment::wait(0, 6, 3), Segment::wait(8, 14, 6)];
        for s in population {
            store.insert(s);
        }
        let r = plan_within(&store, 0, 0, 8, &IntraConfig::default()).expect("route");
        for seg in &r.segments {
            for other in &population {
                assert_eq!(
                    carp_geometry::earliest_collision_reference(seg, other),
                    None,
                    "{seg} vs {other}"
                );
            }
        }
    }
}
