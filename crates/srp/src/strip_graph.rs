//! Strip graph construction (§IV-A, Algorithm 1).
//!
//! Grids are aggregated into **strips** — maximal rows or columns of
//! consecutive grids with the same value (Definition 4). Full-free rows
//! become long *latitudinal* aisle strips; the remaining grids are
//! aggregated along the *longitudinal* direction into aisle or rack strips.
//! Each strip becomes a vertex of the strip graph (Definition 5); two
//! strips are connected when they contain adjacent grids and are not both
//! racks.
//!
//! Edge *geometry* is precomputed so the planner can resolve, in O(1), the
//! adjacent grid pair through which a route transits between two strips
//! (§VI, Fig. 10): the unique crossing for perpendicular or collinear
//! neighbours, and the overlap interval for side-by-side neighbours.

use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::types::Cell;
use std::collections::HashSet;

/// Identifier of a strip — an index into [`StripGraph::strips`].
pub type StripId = u32;

/// Orientation of a strip (Definition 4's `dir`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripDir {
    /// A row of grids (runs west–east).
    Latitudinal,
    /// A column of grids (runs north–south).
    Longitudinal,
}

/// Strip type (Definition 4's `type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripKind {
    /// Traversable aisle grids.
    Aisle,
    /// Rack grids — robots may only enter/leave these as route endpoints.
    Rack,
}

/// A strip `v = ⟨α, β, dir, type⟩` (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strip {
    /// Westernmost/northernmost grid (`α`).
    pub alpha: Cell,
    /// Easternmost/southernmost grid (`β`).
    pub beta: Cell,
    /// Orientation.
    pub dir: StripDir,
    /// Aisle or rack.
    pub kind: StripKind,
}

impl Strip {
    /// Number of grids in the strip.
    pub fn len(&self) -> u32 {
        match self.dir {
            StripDir::Latitudinal => (self.beta.col - self.alpha.col) as u32 + 1,
            StripDir::Longitudinal => (self.beta.row - self.alpha.row) as u32 + 1,
        }
    }

    /// Strips are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `c` lies within the strip.
    pub fn contains(&self, c: Cell) -> bool {
        match self.dir {
            StripDir::Latitudinal => {
                c.row == self.alpha.row && (self.alpha.col..=self.beta.col).contains(&c.col)
            }
            StripDir::Longitudinal => {
                c.col == self.alpha.col && (self.alpha.row..=self.beta.row).contains(&c.row)
            }
        }
    }

    /// One-dimensional grid number of `c` within the strip (the spatial
    /// coordinate of the segment representation, Definition 6).
    #[inline]
    pub fn offset_of(&self, c: Cell) -> i32 {
        debug_assert!(self.contains(c));
        match self.dir {
            StripDir::Latitudinal => (c.col - self.alpha.col) as i32,
            StripDir::Longitudinal => (c.row - self.alpha.row) as i32,
        }
    }

    /// Inverse of [`Strip::offset_of`].
    #[inline]
    pub fn cell_at(&self, offset: i32) -> Cell {
        debug_assert!((0..self.len() as i32).contains(&offset));
        match self.dir {
            StripDir::Latitudinal => Cell::new(self.alpha.row, self.alpha.col + offset as u16),
            StripDir::Longitudinal => Cell::new(self.alpha.row + offset as u16, self.alpha.col),
        }
    }

    /// The coordinate along the strip's axis (col for latitudinal, row for
    /// longitudinal) of a cell.
    #[inline]
    fn axis_coord(&self, c: Cell) -> u16 {
        match self.dir {
            StripDir::Latitudinal => c.col,
            StripDir::Longitudinal => c.row,
        }
    }
}

/// How two adjacent strips touch, with the data needed to resolve the
/// transit grid pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeGeom {
    /// Strips of different orientations: a unique crossing pair
    /// (Fig. 10(b)).
    Perpendicular {
        /// The cell of the source strip adjacent to the target strip.
        u_cell: Cell,
        /// The adjacent cell inside the target strip.
        v_cell: Cell,
    },
    /// Same orientation, same row/column, end to end: a unique pair.
    Collinear {
        /// Boundary cell of the source strip.
        u_cell: Cell,
        /// Boundary cell of the target strip.
        v_cell: Cell,
    },
    /// Same orientation in adjacent rows/columns (Fig. 10(a)): every cell
    /// of the axis-overlap `[lo, hi]` is a valid transit pair; the planner
    /// greedily picks the one nearest the source grid (§VI).
    Lateral {
        /// First axis coordinate of the overlap.
        lo: u16,
        /// Last axis coordinate of the overlap.
        hi: u16,
    },
}

/// A directed adjacency entry: target strip plus transit geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripEdge {
    /// Target strip.
    pub to: StripId,
    /// Transit geometry, oriented from the owning strip towards `to`.
    pub geom: EdgeGeom,
}

/// The strip graph `S = ⟨V, E⟩` (Definition 5).
#[derive(Debug, Clone)]
pub struct StripGraph {
    /// All strips (vertices).
    pub strips: Vec<Strip>,
    /// Dense cell → strip mapping, indexed by [`WarehouseMatrix::index_of`].
    cell_to_strip: Vec<StripId>,
    /// Directed adjacency lists (both directions of each undirected edge).
    adj: Vec<Vec<StripEdge>>,
    /// Prefix offsets into a dense numbering of *directed* edges: the edges
    /// of strip `u` occupy indices `edge_base[u] .. edge_base[u + 1]`. The
    /// planner's per-search edge-cost cache is a flat array over this
    /// numbering.
    edge_base: Vec<u32>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl StripGraph {
    /// Build the strip graph from a warehouse matrix (Algorithm 1).
    pub fn build(m: &WarehouseMatrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut strips: Vec<Strip> = Vec::new();
        let mut cell_to_strip = vec![StripId::MAX; m.num_cells()];

        // Phase 1 (lines 4–8): full-free rows become latitudinal aisles.
        let mut row_is_aisle = vec![false; rows as usize];
        for i in 0..rows {
            if m.row_is_all_free(i) {
                row_is_aisle[i as usize] = true;
                let id = strips.len() as StripId;
                strips.push(Strip {
                    alpha: Cell::new(i, 0),
                    beta: Cell::new(i, cols - 1),
                    dir: StripDir::Latitudinal,
                    kind: StripKind::Aisle,
                });
                for j in 0..cols {
                    cell_to_strip[m.index_of(Cell::new(i, j)) as usize] = id;
                }
            }
        }

        // Phase 2 (lines 10–19): aggregate the rest along columns into
        // maximal same-value runs, skipping already-visited rows.
        for j in 0..cols {
            let mut i = 0;
            while i < rows {
                if row_is_aisle[i as usize] {
                    i += 1;
                    continue;
                }
                let value = m.is_rack(Cell::new(i, j));
                let mut k = i;
                while k + 1 < rows
                    && !row_is_aisle[(k + 1) as usize]
                    && m.is_rack(Cell::new(k + 1, j)) == value
                {
                    k += 1;
                }
                let id = strips.len() as StripId;
                strips.push(Strip {
                    alpha: Cell::new(i, j),
                    beta: Cell::new(k, j),
                    dir: StripDir::Longitudinal,
                    kind: if value {
                        StripKind::Rack
                    } else {
                        StripKind::Aisle
                    },
                });
                for r in i..=k {
                    cell_to_strip[m.index_of(Cell::new(r, j)) as usize] = id;
                }
                i = k + 1;
            }
        }

        // Phase 3 (lines 21–24): edges between strips containing adjacent
        // grids, unless both are racks. We scan cell adjacencies (O(H·W))
        // rather than the paper's O(|V|²) pair loop — same result.
        let mut adj: Vec<Vec<StripEdge>> = vec![Vec::new(); strips.len()];
        let mut seen: HashSet<(StripId, StripId)> = HashSet::new();
        let mut num_edges = 0;
        for c in m.cells() {
            for n in [
                c.step(carp_warehouse::types::Dir::East, rows, cols),
                c.step(carp_warehouse::types::Dir::South, rows, cols),
            ]
            .into_iter()
            .flatten()
            {
                let (a, b) = (
                    cell_to_strip[m.index_of(c) as usize],
                    cell_to_strip[m.index_of(n) as usize],
                );
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !seen.insert(key) {
                    continue;
                }
                let (sa, sb) = (strips[a as usize], strips[b as usize]);
                if sa.kind == StripKind::Rack && sb.kind == StripKind::Rack {
                    continue;
                }
                num_edges += 1;
                adj[a as usize].push(StripEdge {
                    to: b,
                    geom: edge_geom(&sa, &sb),
                });
                adj[b as usize].push(StripEdge {
                    to: a,
                    geom: edge_geom(&sb, &sa),
                });
            }
        }

        let mut edge_base = Vec::with_capacity(adj.len() + 1);
        let mut acc = 0u32;
        edge_base.push(0);
        for list in &adj {
            acc += list.len() as u32;
            edge_base.push(acc);
        }

        StripGraph {
            strips,
            cell_to_strip,
            adj,
            edge_base,
            num_edges,
        }
    }

    /// The strip containing `cell`.
    #[inline]
    pub fn strip_of(&self, m: &WarehouseMatrix, cell: Cell) -> StripId {
        self.cell_to_strip[m.index_of(cell) as usize]
    }

    /// The strip with the given id.
    #[inline]
    pub fn strip(&self, id: StripId) -> &Strip {
        &self.strips[id as usize]
    }

    /// Directed adjacency of a strip.
    #[inline]
    pub fn edges(&self, id: StripId) -> &[StripEdge] {
        &self.adj[id as usize]
    }

    /// Number of strips (Table II "Strip-based #vertices").
    pub fn num_vertices(&self) -> usize {
        self.strips.len()
    }

    /// Number of undirected edges (Table II "Strip-based #edges").
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Dense index of the `k`-th directed edge out of strip `u`, unique
    /// across the whole graph (see `edge_base`).
    #[inline]
    pub fn edge_index(&self, u: StripId, k: usize) -> usize {
        debug_assert!(k < self.adj[u as usize].len());
        self.edge_base[u as usize] as usize + k
    }

    /// Total number of directed edges (twice [`StripGraph::num_edges`]
    /// minus nothing — every undirected edge appears in both adjacency
    /// lists).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        *self.edge_base.last().expect("edge_base never empty") as usize
    }

    /// Resolve the transit grid pair from `from_cell` in strip `u` towards
    /// strip `v` (§VI): the unique pair for perpendicular/collinear
    /// neighbours, the nearest overlap pair for side-by-side neighbours.
    pub fn transition(&self, u: StripId, edge: &StripEdge, from_cell: Cell) -> (Cell, Cell) {
        match edge.geom {
            EdgeGeom::Perpendicular { u_cell, v_cell } | EdgeGeom::Collinear { u_cell, v_cell } => {
                (u_cell, v_cell)
            }
            EdgeGeom::Lateral { lo, hi } => {
                let su = self.strip(u);
                let sv = self.strip(edge.to);
                let coord = su.axis_coord(from_cell).clamp(lo, hi);
                let u_cell = match su.dir {
                    StripDir::Latitudinal => Cell::new(su.alpha.row, coord),
                    StripDir::Longitudinal => Cell::new(coord, su.alpha.col),
                };
                let v_cell = match sv.dir {
                    StripDir::Latitudinal => Cell::new(sv.alpha.row, coord),
                    StripDir::Longitudinal => Cell::new(coord, sv.alpha.col),
                };
                (u_cell, v_cell)
            }
        }
    }

    /// Estimated heap bytes of the graph (MC metric).
    pub fn memory_bytes(&self) -> usize {
        memory::vec_bytes(&self.strips)
            + memory::vec_bytes(&self.cell_to_strip)
            + self.adj.iter().map(memory::vec_bytes).sum::<usize>()
            + memory::vec_bytes(&self.adj)
            + memory::vec_bytes(&self.edge_base)
    }
}

/// Geometry of the edge from `a` towards `b` (they are known adjacent).
fn edge_geom(a: &Strip, b: &Strip) -> EdgeGeom {
    if a.dir != b.dir {
        // Perpendicular: exactly one cell of `a` is adjacent to one of `b`.
        let (lat, lon) = if a.dir == StripDir::Latitudinal {
            (a, b)
        } else {
            (b, a)
        };
        let col = lon.alpha.col;
        let row = lat.alpha.row;
        // The longitudinal strip's end adjacent to the latitudinal row.
        let lon_cell = if lon.alpha.row == row + 1 {
            lon.alpha
        } else if row > 0 && lon.beta.row == row - 1 {
            lon.beta
        } else {
            // The strips overlap laterally: the longitudinal strip passes
            // beside the row; treat as the cell in the same row.
            Cell::new(row, col)
        };
        let lat_cell = Cell::new(row, col.min(lat.beta.col).max(lat.alpha.col));
        if a.dir == StripDir::Latitudinal {
            EdgeGeom::Perpendicular {
                u_cell: lat_cell,
                v_cell: lon_cell,
            }
        } else {
            EdgeGeom::Perpendicular {
                u_cell: lon_cell,
                v_cell: lat_cell,
            }
        }
    } else {
        let same_line = match a.dir {
            StripDir::Latitudinal => a.alpha.row == b.alpha.row,
            StripDir::Longitudinal => a.alpha.col == b.alpha.col,
        };
        if same_line {
            // Collinear, end to end.
            let (u_cell, v_cell) = match a.dir {
                StripDir::Latitudinal => {
                    if a.beta.col + 1 == b.alpha.col {
                        (a.beta, b.alpha)
                    } else {
                        (a.alpha, b.beta)
                    }
                }
                StripDir::Longitudinal => {
                    if a.beta.row + 1 == b.alpha.row {
                        (a.beta, b.alpha)
                    } else {
                        (a.alpha, b.beta)
                    }
                }
            };
            EdgeGeom::Collinear { u_cell, v_cell }
        } else {
            // Side by side: overlap interval along the axis.
            let (a_lo, a_hi, b_lo, b_hi) = match a.dir {
                StripDir::Latitudinal => (a.alpha.col, a.beta.col, b.alpha.col, b.beta.col),
                StripDir::Longitudinal => (a.alpha.row, a.beta.row, b.alpha.row, b.beta.row),
            };
            EdgeGeom::Lateral {
                lo: a_lo.max(b_lo),
                hi: a_hi.min(b_hi),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 3-style toy warehouse: two full aisle rows sandwiching a
    /// band with one 2×2 rack cluster.
    fn toy() -> (WarehouseMatrix, StripGraph) {
        let m = WarehouseMatrix::from_ascii(
            ".....\n\
             .##..\n\
             .##..\n\
             .....",
        );
        let g = StripGraph::build(&m);
        (m, g)
    }

    #[test]
    fn toy_strip_inventory() {
        let (m, g) = toy();
        // Rows 0 and 3 are latitudinal aisles. Columns 0..4 over rows 1..2:
        // col0 aisle, col1 rack, col2 rack, col3 aisle, col4 aisle.
        assert_eq!(g.num_vertices(), 7);
        let lat = g
            .strips
            .iter()
            .filter(|s| s.dir == StripDir::Latitudinal)
            .count();
        assert_eq!(lat, 2);
        let racks = g
            .strips
            .iter()
            .filter(|s| s.kind == StripKind::Rack)
            .count();
        assert_eq!(racks, 2);
        // Every cell is covered by exactly one strip.
        for c in m.cells() {
            let id = g.strip_of(&m, c);
            assert!(g.strip(id).contains(c), "cell {c} not in its strip");
        }
    }

    #[test]
    fn rack_rack_edges_are_excluded() {
        let (_, g) = toy();
        for (id, edges) in g.adj.iter().enumerate() {
            for e in edges {
                let both_rack = g.strip(id as StripId).kind == StripKind::Rack
                    && g.strip(e.to).kind == StripKind::Rack;
                assert!(!both_rack, "rack–rack edge {id} → {}", e.to);
            }
        }
        // The two rack strips are laterally adjacent but must not be linked.
        assert_eq!(g.num_edges(), {
            // col0-aisle ↔ rack1 (lateral), rack2 ↔ col3-aisle (lateral),
            // col3 ↔ col4 (lateral), each longitudinal strip ↔ both
            // latitudinal rows (2 × 5 perpendicular)
            3 + 10
        });
    }

    #[test]
    fn offsets_roundtrip() {
        let (_, g) = toy();
        for s in &g.strips {
            for off in 0..s.len() as i32 {
                assert_eq!(s.offset_of(s.cell_at(off)), off);
            }
        }
    }

    #[test]
    fn perpendicular_transition_pair() {
        let (m, g) = toy();
        // From the top latitudinal aisle into the col-0 aisle strip.
        let top = g.strip_of(&m, Cell::new(0, 0));
        let col0 = g.strip_of(&m, Cell::new(1, 0));
        let edge = *g.edges(top).iter().find(|e| e.to == col0).expect("edge");
        let (gu, gv) = g.transition(top, &edge, Cell::new(0, 4));
        assert_eq!(gu, Cell::new(0, 0));
        assert_eq!(gv, Cell::new(1, 0));
    }

    #[test]
    fn lateral_transition_clamps_to_overlap() {
        let (m, g) = toy();
        let col3 = g.strip_of(&m, Cell::new(1, 3));
        let col4 = g.strip_of(&m, Cell::new(1, 4));
        let edge = *g.edges(col3).iter().find(|e| e.to == col4).expect("edge");
        let (gu, gv) = g.transition(col3, &edge, Cell::new(2, 3));
        assert_eq!(gu, Cell::new(2, 3));
        assert_eq!(gv, Cell::new(2, 4));
    }

    #[test]
    fn rack_strip_reachable_from_lateral_aisle() {
        let (m, g) = toy();
        let rack = g.strip_of(&m, Cell::new(1, 1));
        assert_eq!(g.strip(rack).kind, StripKind::Rack);
        let has_aisle_neighbor = g
            .edges(rack)
            .iter()
            .any(|e| g.strip(e.to).kind == StripKind::Aisle);
        assert!(has_aisle_neighbor);
    }

    #[test]
    fn collinear_runs_split_on_value_change() {
        // One column alternates aisle/rack with no full-free rows.
        let m = WarehouseMatrix::from_ascii(
            ".#\n\
             .#\n\
             ##\n\
             .#",
        );
        let g = StripGraph::build(&m);
        // Column 0: aisle run rows 0–1, rack row 2, aisle row 3.
        let a = g.strip_of(&m, Cell::new(0, 0));
        let b = g.strip_of(&m, Cell::new(2, 0));
        let c = g.strip_of(&m, Cell::new(3, 0));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(g.strip(a).kind, StripKind::Aisle);
        assert_eq!(g.strip(b).kind, StripKind::Rack);
        let edge = *g
            .edges(a)
            .iter()
            .find(|e| e.to == b)
            .expect("collinear edge");
        match edge.geom {
            EdgeGeom::Collinear { u_cell, v_cell } => {
                assert_eq!(u_cell, Cell::new(1, 0));
                assert_eq!(v_cell, Cell::new(2, 0));
            }
            other => panic!("expected collinear, got {other:?}"),
        }
    }

    #[test]
    fn dense_edge_indices_are_a_bijection() {
        let (_, g) = toy();
        assert_eq!(g.num_directed_edges(), 2 * g.num_edges());
        let mut seen = std::collections::HashSet::new();
        for u in 0..g.num_vertices() as StripId {
            for k in 0..g.edges(u).len() {
                let eid = g.edge_index(u, k);
                assert!(eid < g.num_directed_edges());
                assert!(seen.insert(eid), "edge index {eid} assigned twice");
            }
        }
        assert_eq!(seen.len(), g.num_directed_edges());
    }

    #[test]
    fn table2_scale_reduction_on_presets() {
        // Table II reports strip-based #vertices ≈ 16% and #edges ≈ 23% of
        // grid-based. Our synthetic layouts must show the same order of
        // reduction (we assert a generous band).
        use carp_warehouse::layout::WarehousePreset;
        for preset in WarehousePreset::ALL {
            let layout = preset.generate();
            let g = StripGraph::build(&layout.matrix);
            let v_ratio = g.num_vertices() as f64 / layout.matrix.num_cells() as f64;
            let e_ratio = g.num_edges() as f64 / layout.matrix.grid_edge_count() as f64;
            assert!(
                (0.05..0.30).contains(&v_ratio),
                "{}: vertex ratio {v_ratio:.3}",
                preset.name()
            );
            assert!(
                (0.05..0.40).contains(&e_ratio),
                "{}: edge ratio {e_ratio:.3}",
                preset.name()
            );
        }
    }

    #[test]
    fn every_cell_in_exactly_one_strip_on_presets() {
        use carp_warehouse::layout::WarehousePreset;
        let layout = WarehousePreset::W1.generate();
        let g = StripGraph::build(&layout.matrix);
        let mut counts = vec![0u32; g.num_vertices()];
        for c in layout.matrix.cells() {
            let id = g.strip_of(&layout.matrix, c);
            assert!(g.strip(id).contains(c));
            counts[id as usize] += 1;
        }
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, layout.matrix.num_cells());
        for (id, s) in g.strips.iter().enumerate() {
            assert_eq!(counts[id], s.len(), "strip {id} cell count");
        }
    }
}
