//! Conversion between grid-level routes and the strip/segment
//! representation — the third TC component of Fig. 22(a).
//!
//! Any legal grid route decomposes uniquely: at every instant the robot is
//! inside exactly one strip; while it stays in a strip it moves along the
//! strip axis or waits (strips are maximal same-value runs, so a lateral
//! step always changes strips), and each strip change is a *crossing*
//! motion. [`decompose`] produces the per-strip segment polylines plus the
//! crossing list; [`compose`] rebuilds the grid route from a chain of
//! intra-strip legs (used by the planner's route assembly).

use crate::intra::IntraRoute;
use crate::strip_graph::{StripGraph, StripId};
use carp_geometry::Segment;
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};

/// A grid route decomposed into strip-level segments and crossings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// `(strip, segment)` pairs covering the route's full occupancy,
    /// ordered by time.
    pub segments: Vec<(StripId, Segment)>,
    /// Directed boundary motions `(from_cell, to_cell, departure_time)`.
    pub crossings: Vec<(Cell, Cell, Time)>,
}

/// Decompose a grid route into per-strip segment polylines and crossings.
pub fn decompose(m: &WarehouseMatrix, graph: &StripGraph, route: &Route) -> Decomposition {
    let mut segments = Vec::new();
    let mut crossings = Vec::new();

    let cells = &route.grids;
    let mut run_start = 0usize; // index into cells of the current strip run
    let mut i = 0usize;
    while i < cells.len() {
        let strip_id = graph.strip_of(m, cells[run_start]);
        // Extend the run while we stay in the same strip.
        let same_strip = i + 1 < cells.len() && graph.strip_of(m, cells[i + 1]) == strip_id;
        if same_strip {
            i += 1;
            continue;
        }
        // Emit the run [run_start, i] as a polyline within `strip_id`.
        let strip = graph.strip(strip_id);
        let t_base = route.start + run_start as Time;
        let offsets: Vec<i32> = cells[run_start..=i]
            .iter()
            .map(|&c| strip.offset_of(c))
            .collect();
        emit_polyline(strip_id, t_base, &offsets, &mut segments);
        // Crossing into the next strip, if any.
        if i + 1 < cells.len() {
            let t = route.start + i as Time;
            crossings.push((cells[i], cells[i + 1], t));
            run_start = i + 1;
        }
        i += 1;
    }
    Decomposition {
        segments,
        crossings,
    }
}

/// Emit maximal constant-slope segments for a run of strip offsets
/// starting at `t_base`.
fn emit_polyline(strip: StripId, t_base: Time, offsets: &[i32], out: &mut Vec<(StripId, Segment)>) {
    debug_assert!(!offsets.is_empty());
    if offsets.len() == 1 {
        out.push((strip, Segment::point(t_base, offsets[0])));
        return;
    }
    let mut seg_start = 0usize;
    let mut slope = offsets[1] - offsets[0];
    for k in 1..offsets.len() {
        let step = offsets[k] - offsets[k - 1];
        debug_assert!(step.abs() <= 1, "offsets must be unit steps");
        if step != slope {
            out.push((strip, make_seg(t_base, seg_start, k - 1, offsets)));
            seg_start = k - 1;
            slope = step;
        }
    }
    out.push((
        strip,
        make_seg(t_base, seg_start, offsets.len() - 1, offsets),
    ));
}

fn make_seg(t_base: Time, a: usize, b: usize, offsets: &[i32]) -> Segment {
    Segment {
        t0: t_base + a as Time,
        t1: t_base + b as Time,
        s0: offsets[a],
        s1: offsets[b],
    }
}

/// Rebuild the grid cells of one intra-strip leg.
pub fn leg_cells(graph: &StripGraph, strip: StripId, leg: &IntraRoute) -> Vec<Cell> {
    let s = graph.strip(strip);
    let mut cells = Vec::with_capacity((leg.arrive - leg.enter + 1) as usize);
    for seg in &leg.segments {
        for (t, off) in seg.occupancy() {
            // Shared endpoints between consecutive segments appear twice;
            // keep the first occurrence of each instant.
            if cells.len() as Time + leg.enter > t {
                continue;
            }
            cells.push(s.cell_at(off));
        }
    }
    cells
}

/// Compose a full grid route from a chain of `(strip, leg)` pairs, where
/// consecutive legs are bridged by one crossing step (the first leg starts
/// at the route's departure; each following leg starts one instant after
/// the previous leg ends, on an adjacent cell).
pub fn compose(graph: &StripGraph, legs: &[(StripId, IntraRoute)]) -> Route {
    assert!(!legs.is_empty());
    let start = legs[0].1.enter;
    let mut grids: Vec<Cell> = Vec::new();
    for (k, (strip, leg)) in legs.iter().enumerate() {
        let cells = leg_cells(graph, *strip, leg);
        if k > 0 {
            let prev = &legs[k - 1].1;
            debug_assert_eq!(leg.enter, prev.arrive + 1, "legs must be time-contiguous");
            debug_assert!(
                grids.last().expect("nonempty").is_adjacent(cells[0]),
                "legs must be space-adjacent"
            );
        }
        grids.extend(cells);
    }
    Route::new(start, grids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_graph::StripGraph;

    fn toy() -> (WarehouseMatrix, StripGraph) {
        let m = WarehouseMatrix::from_ascii(
            ".....\n\
             .##..\n\
             .##..\n\
             .....",
        );
        let g = StripGraph::build(&m);
        (m, g)
    }

    #[test]
    fn straight_route_in_one_strip_is_one_segment() {
        let (m, g) = toy();
        let r = Route::new(4, (0..5).map(|j| Cell::new(0, j)).collect());
        let d = decompose(&m, &g, &r);
        assert_eq!(d.crossings, vec![]);
        assert_eq!(d.segments.len(), 1);
        let (_, seg) = d.segments[0];
        assert_eq!(
            seg,
            Segment {
                t0: 4,
                t1: 8,
                s0: 0,
                s1: 4
            }
        );
    }

    #[test]
    fn waits_and_reversals_split_polyline() {
        let (m, g) = toy();
        // Move east 2, wait 2, move back west 1 — all inside the top aisle.
        let r = Route::new(
            0,
            vec![
                Cell::new(0, 0),
                Cell::new(0, 1),
                Cell::new(0, 2),
                Cell::new(0, 2),
                Cell::new(0, 2),
                Cell::new(0, 1),
            ],
        );
        let d = decompose(&m, &g, &r);
        let segs: Vec<Segment> = d.segments.iter().map(|&(_, s)| s).collect();
        assert_eq!(
            segs,
            vec![
                Segment {
                    t0: 0,
                    t1: 2,
                    s0: 0,
                    s1: 2
                },
                Segment {
                    t0: 2,
                    t1: 4,
                    s0: 2,
                    s1: 2
                },
                Segment {
                    t0: 4,
                    t1: 5,
                    s0: 2,
                    s1: 1
                },
            ]
        );
    }

    #[test]
    fn strip_changes_produce_crossings() {
        let (m, g) = toy();
        // Down column 0 from the top aisle to the bottom aisle, then east.
        let r = Route::new(
            10,
            vec![
                Cell::new(0, 0),
                Cell::new(1, 0),
                Cell::new(2, 0),
                Cell::new(3, 0),
                Cell::new(3, 1),
            ],
        );
        let d = decompose(&m, &g, &r);
        assert_eq!(d.crossings.len(), 2);
        assert_eq!(d.crossings[0], (Cell::new(0, 0), Cell::new(1, 0), 10));
        assert_eq!(d.crossings[1], (Cell::new(2, 0), Cell::new(3, 0), 12));
        // Three strips: top aisle (point), col-0 aisle (travel), bottom
        // aisle (travel).
        assert_eq!(d.segments.len(), 3);
        assert_eq!(d.segments[0].1, Segment::point(10, 0));
        assert_eq!(
            d.segments[1].1,
            Segment {
                t0: 11,
                t1: 12,
                s0: 0,
                s1: 1
            }
        );
        assert_eq!(
            d.segments[2].1,
            Segment {
                t0: 13,
                t1: 14,
                s0: 0,
                s1: 1
            }
        );
    }

    #[test]
    fn decomposition_preserves_occupancy() {
        let (m, g) = toy();
        let r = Route::new(
            0,
            vec![
                Cell::new(0, 3),
                Cell::new(0, 4),
                Cell::new(1, 4),
                Cell::new(1, 4),
                Cell::new(2, 4),
                Cell::new(3, 4),
                Cell::new(3, 3),
            ],
        );
        let d = decompose(&m, &g, &r);
        // Rebuild (time → cell) from the segments and compare to the route.
        let mut rebuilt: std::collections::BTreeMap<Time, Cell> = std::collections::BTreeMap::new();
        for &(sid, seg) in &d.segments {
            let strip = g.strip(sid);
            for (t, off) in seg.occupancy() {
                let cell = strip.cell_at(off);
                let prev = rebuilt.insert(t, cell);
                assert!(
                    prev.is_none_or(|p| p == cell),
                    "inconsistent occupancy at t={t}"
                );
            }
        }
        let expected: std::collections::BTreeMap<Time, Cell> = r.occupancy().collect();
        assert_eq!(rebuilt, expected);
    }

    #[test]
    fn compose_chains_legs() {
        let (_, g) = toy();
        // Leg 1: top aisle, offsets 0→... point at 0; leg 2: col0 strip.
        let leg1 = IntraRoute {
            segments: vec![Segment::point(5, 0)],
            enter: 5,
            arrive: 5,
        };
        let leg2 = IntraRoute {
            segments: vec![Segment {
                t0: 6,
                t1: 7,
                s0: 0,
                s1: 1,
            }],
            enter: 6,
            arrive: 7,
        };
        let (m, _) = toy();
        let top = g.strip_of(&m, Cell::new(0, 0));
        let col0 = g.strip_of(&m, Cell::new(1, 0));
        let r = compose(&g, &[(top, leg1), (col0, leg2)]);
        assert_eq!(r.start, 5);
        assert_eq!(
            r.grids,
            vec![Cell::new(0, 0), Cell::new(1, 0), Cell::new(2, 0)]
        );
    }

    #[test]
    fn leg_cells_deduplicates_shared_endpoints() {
        let (m, g) = toy();
        let top = g.strip_of(&m, Cell::new(0, 0));
        let leg = IntraRoute {
            segments: vec![
                Segment {
                    t0: 0,
                    t1: 2,
                    s0: 0,
                    s1: 2,
                },
                Segment {
                    t0: 2,
                    t1: 3,
                    s0: 2,
                    s1: 2,
                },
            ],
            enter: 0,
            arrive: 3,
        };
        let cells = leg_cells(&g, top, &leg);
        assert_eq!(
            cells,
            vec![
                Cell::new(0, 0),
                Cell::new(0, 1),
                Cell::new(0, 2),
                Cell::new(0, 2)
            ]
        );
    }
}
