//! Deterministic heap-footprint accounting for the MC metric (§VIII-A).
//!
//! The paper reports JVM memory consumption; heap numbers are not portable
//! across runtimes, so we account the live bytes of each planner's data
//! structures instead. The estimates below use the actual element sizes plus
//! fixed per-node overheads of the std collections, which reproduces the
//! *mechanism* behind the paper's MC result: SRP stores two endpoints per
//! segment while grid-based planners store per-grid sequences and per-cell
//! reservations.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Per-node overhead of a B-tree entry (parent pointers, node headers
/// amortized over the ~11-entry nodes of std's B-tree).
const BTREE_NODE_OVERHEAD: usize = 16;
/// Per-slot overhead of a hashbrown table (control byte + load-factor slack
/// amortized as one extra slot per entry).
const HASH_SLOT_OVERHEAD: usize = 2;

/// Heap bytes of a `Vec`'s buffer.
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * core::mem::size_of::<T>()
}

/// Heap bytes of a slice-backed buffer given its capacity.
pub fn raw_bytes<T>(capacity: usize) -> usize {
    capacity * core::mem::size_of::<T>()
}

/// Estimated heap bytes of a `HashMap`.
pub fn hashmap_bytes<K, V, S>(m: &HashMap<K, V, S>) -> usize {
    let slot = core::mem::size_of::<(K, V)>() + HASH_SLOT_OVERHEAD;
    m.capacity().max(m.len()) * slot
}

/// Estimated heap bytes of a `HashSet`.
pub fn hashset_bytes<T, S>(s: &HashSet<T, S>) -> usize {
    let slot = core::mem::size_of::<T>() + HASH_SLOT_OVERHEAD;
    s.capacity().max(s.len()) * slot
}

/// Estimated heap bytes of a `BTreeMap` (a red-black-tree stand-in; the
/// paper prescribes an ordered set, §V-B).
pub fn btreemap_bytes<K, V>(m: &BTreeMap<K, V>) -> usize {
    m.len() * (core::mem::size_of::<(K, V)>() + BTREE_NODE_OVERHEAD)
}

/// Estimated heap bytes of a `BTreeSet`.
pub fn btreeset_bytes<T>(s: &BTreeSet<T>) -> usize {
    s.len() * (core::mem::size_of::<T>() + BTREE_NODE_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounting_tracks_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(vec_bytes(&v), 80);
        v.extend_from_slice(&[1, 2, 3]);
        assert_eq!(vec_bytes(&v), 80);
    }

    #[test]
    fn map_accounting_grows_with_entries() {
        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        assert_eq!(btreemap_bytes(&m), 0);
        for i in 0..100 {
            m.insert(i, i as u64);
        }
        let b = btreemap_bytes(&m);
        assert!(b >= 100 * (4 + 8), "underestimates payload: {b}");
    }

    #[test]
    fn hash_accounting_nonzero_when_populated() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(1, 2);
        assert!(hashmap_bytes(&m) >= 18);
        let mut s: HashSet<u32> = HashSet::new();
        s.insert(7);
        assert!(hashset_bytes(&s) >= 6);
    }
}
