//! Route-planning requests: the origin–destination pairs `Q_t` of
//! Definition 3, tagged with the query kind of the delivery workflow
//! (§VIII-A: each delivery task incurs a pickup, a transmission and a
//! return query).

use crate::types::{Cell, Time};
use serde::{Deserialize, Serialize};

/// Identifier of a planning request, unique within a simulation run.
pub type RequestId = u64;

/// The three query kinds a delivery task decomposes into (§VIII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Robot → rack: an idle robot drives to the rack it must carry.
    Pickup,
    /// Rack → picker: the loaded robot delivers the rack to a picker station.
    Transmission,
    /// Picker → rack home: the robot returns the rack to its original slot.
    Return,
}

impl QueryKind {
    /// All kinds in workflow order.
    pub const ALL: [QueryKind; 3] = [
        QueryKind::Pickup,
        QueryKind::Transmission,
        QueryKind::Return,
    ];
}

/// One origin–destination planning request `⟨o, d⟩` emerging at time `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Emerging time `t` — the earliest time the robot may start moving.
    pub t: Time,
    /// Origin grid `o`.
    pub origin: Cell,
    /// Destination grid `d`.
    pub destination: Cell,
    /// Which leg of the delivery workflow this request belongs to.
    pub kind: QueryKind,
}

impl Request {
    /// Construct a request.
    pub fn new(id: RequestId, t: Time, origin: Cell, destination: Cell, kind: QueryKind) -> Self {
        Request {
            id,
            t,
            origin,
            destination,
            kind,
        }
    }

    /// Lower bound on the route duration: the Manhattan distance.
    pub fn distance_lower_bound(&self) -> u32 {
        self.origin.manhattan(self.destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_is_manhattan() {
        let q = Request::new(0, 5, Cell::new(1, 1), Cell::new(4, 3), QueryKind::Pickup);
        assert_eq!(q.distance_lower_bound(), 5);
    }

    #[test]
    fn kinds_cover_workflow() {
        assert_eq!(QueryKind::ALL.len(), 3);
        assert_eq!(QueryKind::ALL[0], QueryKind::Pickup);
        assert_eq!(QueryKind::ALL[2], QueryKind::Return);
    }
}
