//! Parametric warehouse layout generation.
//!
//! The paper evaluates on three proprietary warehouses (W-1/W-2/W-3,
//! Table II) operated by Geekplus. We cannot obtain those maps, so this
//! module generates layouts with the same *structural* properties the SRP
//! framework exploits (§IV-A remarks):
//!
//! * rack clusters are uniform `2 × l` rectangles with sides parallel to the
//!   axes;
//! * clusters are arranged in **bands** separated by full-width latitudinal
//!   aisles (the "long aisles" Algorithm 1 aggregates first);
//! * within a band, clusters are separated by longitudinal aisle columns;
//! * pickers sit at the bottom boundary, and free margins surround the
//!   storage region.
//!
//! [`WarehousePreset`] instantiates the generator with the dimensions, rack
//! counts, robot counts and picker counts from Table II.

use crate::matrix::WarehouseMatrix;
use crate::types::Cell;
use serde::{Deserialize, Serialize};

/// Configuration of the layout generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Warehouse length `H` in grids (rows).
    pub rows: u16,
    /// Warehouse width `W` in grids (columns).
    pub cols: u16,
    /// Rack cluster length `l`: clusters are `2 × l` (2 columns wide,
    /// `l` rows long), per the §IV-A simplification.
    pub cluster_len: u16,
    /// Free columns between horizontally adjacent clusters.
    pub col_gap: u16,
    /// Full-width free rows between vertically adjacent bands (these become
    /// the long latitudinal aisle strips).
    pub band_gap: u16,
    /// Free rows at the top edge.
    pub margin_top: u16,
    /// Free rows at the bottom edge (picker zone).
    pub margin_bottom: u16,
    /// Free columns at the left edge.
    pub margin_left: u16,
    /// Free columns at the right edge.
    pub margin_right: u16,
    /// Target number of rack grids; the generator fills
    /// `round(target / (2·l))` cluster slots, spread evenly over the
    /// candidate slot lattice (Bresenham spread), so the actual count is the
    /// nearest multiple of `2·l`.
    pub target_racks: u32,
    /// Number of picker stations, placed evenly along the bottom margin.
    pub pickers: u16,
    /// Number of robots; spawn cells are spread over the aisle rows.
    pub robots: u16,
}

/// A generated warehouse: the matrix plus the semantic cell sets the
/// simulator needs.
#[derive(Debug, Clone)]
pub struct Layout {
    /// The generated grid matrix.
    pub matrix: WarehouseMatrix,
    /// Every rack grid (each is a rack "home" slot for the return leg).
    pub rack_cells: Vec<Cell>,
    /// Picker station cells (free cells on the bottom margin).
    pub pickers: Vec<Cell>,
    /// Initial robot cells (free aisle cells).
    pub robot_spawns: Vec<Cell>,
    /// The configuration that produced this layout.
    pub config: LayoutConfig,
}

/// Summary statistics of a layout, for the Table II reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutStats {
    /// `H` (rows).
    pub rows: u16,
    /// `W` (columns).
    pub cols: u16,
    /// Number of rack grids.
    pub racks: usize,
    /// Number of robots.
    pub robots: usize,
    /// Number of picker stations.
    pub pickers: usize,
    /// Grid-based vertex count (`H·W`, Table II "Grid-based #vertices").
    pub grid_vertices: usize,
    /// Grid-based 4-adjacency edge count (Table II "Grid-based #edges").
    pub grid_edges: usize,
}

/// The three warehouse scales of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarehousePreset {
    /// W-1: 233 × 104, ≈4896 racks, 408 robots, 68 pickers.
    W1,
    /// W-2: 240 × 206, ≈9792 racks, 952 robots, 136 pickers.
    W2,
    /// W-3: 292 × 278, ≈15088 racks, 2208 robots, 184 pickers.
    W3,
}

impl WarehousePreset {
    /// All presets, smallest first.
    pub const ALL: [WarehousePreset; 3] = [
        WarehousePreset::W1,
        WarehousePreset::W2,
        WarehousePreset::W3,
    ];

    /// Display name matching the paper ("W-1" …).
    pub fn name(self) -> &'static str {
        match self {
            WarehousePreset::W1 => "W-1",
            WarehousePreset::W2 => "W-2",
            WarehousePreset::W3 => "W-3",
        }
    }

    /// Layout configuration matching the preset's Table II row.
    pub fn config(self) -> LayoutConfig {
        let base = LayoutConfig {
            rows: 0,
            cols: 0,
            cluster_len: 6,
            col_gap: 2,
            band_gap: 2,
            margin_top: 4,
            margin_bottom: 4,
            margin_left: 4,
            margin_right: 4,
            target_racks: 0,
            pickers: 0,
            robots: 0,
        };
        match self {
            WarehousePreset::W1 => LayoutConfig {
                rows: 233,
                cols: 104,
                target_racks: 4896,
                pickers: 68,
                robots: 408,
                ..base
            },
            WarehousePreset::W2 => LayoutConfig {
                rows: 240,
                cols: 206,
                target_racks: 9792,
                pickers: 136,
                robots: 952,
                ..base
            },
            WarehousePreset::W3 => LayoutConfig {
                rows: 292,
                cols: 278,
                target_racks: 15088,
                pickers: 184,
                robots: 2208,
                ..base
            },
        }
    }

    /// Generate the preset layout.
    pub fn generate(self) -> Layout {
        self.config().generate()
    }

    /// Per-day task counts (×10³) from Table II, used to shape the synthetic
    /// task streams so day-to-day comparisons keep the paper's proportions.
    pub fn daily_tasks_thousands(self) -> [f64; 5] {
        match self {
            WarehousePreset::W1 => [45.0, 46.6, 27.7, 33.1, 33.4],
            WarehousePreset::W2 => [41.0, 45.9, 34.3, 79.9, 63.5],
            WarehousePreset::W3 => [34.4, 35.2, 26.5, 134.6, 103.9],
        }
    }
}

impl LayoutConfig {
    /// A small configuration (31 × 26 grids) for tests and examples —
    /// structurally identical to the presets, just tiny.
    pub fn small() -> Self {
        LayoutConfig {
            rows: 31,
            cols: 26,
            cluster_len: 4,
            col_gap: 2,
            band_gap: 2,
            margin_top: 2,
            margin_bottom: 3,
            margin_left: 2,
            margin_right: 2,
            target_racks: 128,
            pickers: 6,
            robots: 12,
        }
    }

    /// Number of cluster slots per band (horizontal capacity).
    fn slots_per_band(&self) -> u16 {
        let usable = self.cols - self.margin_left - self.margin_right;
        let period = 2 + self.col_gap;
        // Each slot needs 2 rack columns; the trailing gap may be absorbed
        // by the right margin.
        (usable + self.col_gap) / period
    }

    /// Number of bands (vertical capacity).
    fn num_bands(&self) -> u16 {
        let usable = self.rows - self.margin_top - self.margin_bottom;
        let period = self.cluster_len + self.band_gap;
        (usable + self.band_gap) / period
    }

    /// Generate the layout. Deterministic: the same configuration always
    /// yields the same warehouse.
    ///
    /// # Panics
    /// Panics when the configuration cannot host the requested clusters,
    /// pickers or robots.
    pub fn generate(&self) -> Layout {
        assert!(self.cluster_len >= 1 && self.col_gap >= 1 && self.band_gap >= 1);
        assert!(self.rows > self.margin_top + self.margin_bottom);
        assert!(self.cols > self.margin_left + self.margin_right);

        let mut matrix = WarehouseMatrix::empty(self.rows, self.cols);
        let bands = self.num_bands() as u32;
        let slots = self.slots_per_band() as u32;
        let capacity = bands * slots;
        let per_cluster = 2 * self.cluster_len as u32;
        let want_clusters = ((self.target_racks + per_cluster / 2) / per_cluster).max(1);
        assert!(
            want_clusters <= capacity,
            "layout too small: need {want_clusters} cluster slots, have {capacity}"
        );

        // Bresenham spread: fill exactly `want_clusters` of the `capacity`
        // slots, evenly, deterministically.
        let mut rack_cells = Vec::with_capacity((want_clusters * per_cluster) as usize);
        for k in 0..capacity {
            let filled = (k * want_clusters) / capacity != ((k + 1) * want_clusters) / capacity;
            if !filled {
                continue;
            }
            let band = (k / slots) as u16;
            let slot = (k % slots) as u16;
            let row0 = self.margin_top + band * (self.cluster_len + self.band_gap);
            let col0 = self.margin_left + slot * (2 + self.col_gap);
            for dr in 0..self.cluster_len {
                for dc in 0..2 {
                    let cell = Cell::new(row0 + dr, col0 + dc);
                    matrix.set_rack(cell, true);
                    rack_cells.push(cell);
                }
            }
        }

        // Pickers: evenly spaced along the second-to-last row.
        let picker_row = self.rows - 2;
        let mut pickers = Vec::with_capacity(self.pickers as usize);
        for p in 0..self.pickers {
            let col = ((p as u32 * 2 + 1) * self.cols as u32 / (self.pickers as u32 * 2)) as u16;
            let cell = Cell::new(picker_row, col.min(self.cols - 1));
            debug_assert!(matrix.is_free(cell));
            pickers.push(cell);
        }
        pickers.dedup();

        // Robot spawns: spread over the free cells of the latitudinal aisle
        // rows (top margin + band gaps), round-robin.
        let mut aisle_rows: Vec<u16> = (0..self.rows)
            .filter(|&i| matrix.row_is_all_free(i))
            .collect();
        // Keep the picker row free of parked robots.
        aisle_rows.retain(|&i| i != picker_row);
        let mut robot_spawns = Vec::with_capacity(self.robots as usize);
        let total_slots = aisle_rows.len() as u32 * self.cols as u32;
        assert!(
            total_slots >= self.robots as u32,
            "not enough aisle cells for robots"
        );
        for r in 0..self.robots as u32 {
            let slot = r * total_slots / self.robots as u32;
            let row = aisle_rows[(slot / self.cols as u32) as usize];
            let col = (slot % self.cols as u32) as u16;
            robot_spawns.push(Cell::new(row, col));
        }
        robot_spawns.dedup();

        Layout {
            matrix,
            rack_cells,
            pickers,
            robot_spawns,
            config: self.clone(),
        }
    }
}

impl Layout {
    /// Summary statistics (the left half of Table II).
    pub fn stats(&self) -> LayoutStats {
        LayoutStats {
            rows: self.matrix.rows(),
            cols: self.matrix.cols(),
            racks: self.matrix.num_racks(),
            robots: self.robot_spawns.len(),
            pickers: self.pickers.len(),
            grid_vertices: self.matrix.num_cells(),
            grid_edges: self.matrix.grid_edge_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layout_is_consistent() {
        let l = LayoutConfig::small().generate();
        let stats = l.stats();
        assert_eq!(stats.racks, l.rack_cells.len());
        assert!(
            stats.racks as u32 >= 96,
            "close to target 128, got {}",
            stats.racks
        );
        for &c in &l.pickers {
            assert!(l.matrix.is_free(c), "picker on rack at {c}");
        }
        for &c in &l.robot_spawns {
            assert!(l.matrix.is_free(c), "robot spawned on rack at {c}");
        }
    }

    #[test]
    fn rack_cells_form_2xl_clusters() {
        let cfg = LayoutConfig::small();
        let l = cfg.generate();
        assert_eq!(l.rack_cells.len() % (2 * cfg.cluster_len as usize), 0);
        // Every rack cell has a free cell laterally adjacent (rack endpoints
        // must be reachable with one perpendicular step).
        for &c in &l.rack_cells {
            let reachable = l.matrix.free_neighbors(c).any(|n| n.row == c.row);
            assert!(reachable, "rack {c} has no lateral aisle access");
        }
    }

    #[test]
    fn presets_match_table2_scale() {
        for preset in WarehousePreset::ALL {
            let cfg = preset.config();
            let l = cfg.generate();
            let stats = l.stats();
            assert_eq!(stats.rows, cfg.rows);
            assert_eq!(stats.cols, cfg.cols);
            let target = cfg.target_racks as f64;
            let got = stats.racks as f64;
            assert!(
                (got - target).abs() / target < 0.01,
                "{}: racks {} vs target {}",
                preset.name(),
                stats.racks,
                cfg.target_racks
            );
            assert_eq!(stats.pickers, cfg.pickers as usize);
            assert_eq!(stats.robots, cfg.robots as usize);
        }
    }

    #[test]
    fn w1_grid_counts_match_paper() {
        let stats = WarehousePreset::W1.generate().stats();
        assert_eq!(stats.grid_vertices, 24232); // Table II, grid-based #vertices
    }

    #[test]
    fn bands_are_separated_by_full_free_rows() {
        let l = LayoutConfig::small().generate();
        let m = &l.matrix;
        let mut saw_aisle_row = false;
        let mut saw_rack_row = false;
        for i in 0..m.rows() {
            if m.row_is_all_free(i) {
                saw_aisle_row = true;
            } else {
                saw_rack_row = true;
            }
        }
        assert!(saw_aisle_row && saw_rack_row);
        // The top margin rows are full aisles.
        assert!(m.row_is_all_free(0));
        assert!(m.row_is_all_free(1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WarehousePreset::W1.generate();
        let b = WarehousePreset::W1.generate();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.pickers, b.pickers);
        assert_eq!(a.robot_spawns, b.robot_spawns);
    }

    #[test]
    fn density_is_realistic() {
        // Paper densities: W-1 20.2%, W-2 19.8%, W-3 18.6%.
        for preset in WarehousePreset::ALL {
            let stats = preset.generate().stats();
            let density = stats.racks as f64 / stats.grid_vertices as f64;
            assert!(
                (0.15..0.25).contains(&density),
                "{}: density {density:.3}",
                preset.name()
            );
        }
    }
}
