//! ASCII rendering of warehouses and routes, for debugging, examples and
//! documentation. Deliberately dependency-free; the binary examples build
//! their visualisations from these helpers.

use crate::matrix::WarehouseMatrix;
use crate::route::Route;
use crate::types::{Cell, Time};

/// A character canvas over a warehouse matrix.
#[derive(Debug, Clone)]
pub struct Canvas {
    rows: usize,
    cols: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Start from the matrix's rack map (`#` racks, `.` aisles).
    pub fn from_matrix(m: &WarehouseMatrix) -> Self {
        let (rows, cols) = (m.rows() as usize, m.cols() as usize);
        let mut cells = Vec::with_capacity(rows * cols);
        for c in m.cells() {
            cells.push(if m.is_rack(c) { '#' } else { '.' });
        }
        Canvas { rows, cols, cells }
    }

    /// Put a character at a cell (ignored when out of bounds).
    pub fn put(&mut self, cell: Cell, ch: char) {
        let (r, c) = (cell.row as usize, cell.col as usize);
        if r < self.rows && c < self.cols {
            self.cells[r * self.cols + c] = ch;
        }
    }

    /// Overlay a route: grids are marked with their visit order modulo 10
    /// (`0` = start). Repeated visits keep the latest digit.
    pub fn draw_route(&mut self, route: &Route) {
        for (i, &g) in route.grids.iter().enumerate() {
            self.put(g, char::from_digit((i % 10) as u32, 10).expect("digit"));
        }
    }

    /// Overlay a set of labelled points (robots, pickers…).
    pub fn draw_points(&mut self, points: &[Cell], ch: char) {
        for &p in points {
            self.put(p, ch);
        }
    }

    /// Render to a string with trailing newline per row.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            out.extend(&self.cells[r * self.cols..(r + 1) * self.cols]);
            out.push('\n');
        }
        out
    }
}

/// Space-time diagram of one-dimensional trajectories (strip-local view):
/// rows are grid numbers (descending), columns are time steps. Each
/// trajectory is a `(label, positions-by-time, start-time)` triple; shared
/// `(t, s)` points render as `X`.
pub fn space_time_diagram(trajectories: &[(char, Vec<i32>, Time)]) -> String {
    let mut t_max = 0;
    let (mut s_min, mut s_max) = (i32::MAX, i32::MIN);
    for (_, pos, start) in trajectories {
        t_max = t_max.max(start + pos.len().saturating_sub(1) as Time);
        for &s in pos {
            s_min = s_min.min(s);
            s_max = s_max.max(s);
        }
    }
    if trajectories.is_empty() || s_min > s_max {
        return String::from("(empty)\n");
    }
    let mut out = String::new();
    for s in (s_min..=s_max).rev() {
        out.push_str(&format!("s={s:>3} "));
        for t in 0..=t_max {
            let mut here = None;
            for (label, pos, start) in trajectories {
                if t >= *start {
                    if let Some(&p) = pos.get((t - start) as usize) {
                        if p == s {
                            here = Some(match here {
                                None => *label,
                                Some(_) => 'X',
                            });
                        }
                    }
                }
            }
            out.push(here.unwrap_or('·'));
        }
        out.push('\n');
    }
    out.push_str("  t = ");
    for t in 0..=t_max {
        out.push(char::from_digit(t % 10, 10).expect("digit"));
    }
    out.push('\n');
    out
}

/// Space-time timeline of two conflicting grid routes: their row and column
/// coordinates over time, rendered as two [`space_time_diagram`]s with the
/// time axis anchored at the earlier start. A vertex conflict shows as an
/// `X` at the same instant in *both* projections; a swap shows as adjacent
/// coordinates exchanging between two instants. Used by the audit layer's
/// failure repros.
pub fn conflict_timeline(a: &Route, b: &Route) -> String {
    let base = a.start.min(b.start);
    let proj = |r: &Route, f: fn(Cell) -> i32| -> (char, Vec<i32>, Time) {
        ('?', r.grids.iter().map(|&c| f(c)).collect(), r.start - base)
    };
    let label = |mut t: (char, Vec<i32>, Time), ch: char| {
        t.0 = ch;
        t
    };
    let rows = space_time_diagram(&[
        label(proj(a, |c| c.row as i32), 'a'),
        label(proj(b, |c| c.row as i32), 'b'),
    ]);
    let cols = space_time_diagram(&[
        label(proj(a, |c| c.col as i32), 'a'),
        label(proj(b, |c| c.col as i32), 'b'),
    ]);
    format!("row(t), t0={base}:\n{rows}col(t), t0={base}:\n{cols}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_reflects_matrix_and_overlays() {
        let m = WarehouseMatrix::from_ascii("...\n.#.\n...");
        let mut canvas = Canvas::from_matrix(&m);
        let route = Route::new(0, vec![Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)]);
        canvas.draw_route(&route);
        canvas.draw_points(&[Cell::new(2, 2)], 'P');
        assert_eq!(canvas.render(), "012\n.#.\n..P\n");
    }

    #[test]
    fn route_digits_wrap_modulo_ten() {
        let m = WarehouseMatrix::empty(1, 12);
        let mut canvas = Canvas::from_matrix(&m);
        let route = Route::new(0, (0..12).map(|c| Cell::new(0, c)).collect());
        canvas.draw_route(&route);
        assert_eq!(canvas.render(), "012345678901\n");
    }

    #[test]
    fn out_of_bounds_puts_are_ignored() {
        let m = WarehouseMatrix::empty(2, 2);
        let mut canvas = Canvas::from_matrix(&m);
        canvas.put(Cell::new(9, 9), 'Z');
        assert_eq!(canvas.render(), "..\n..\n");
    }

    #[test]
    fn space_time_diagram_marks_collisions() {
        // Two head-on trajectories meeting at s=1, t=1.
        let a = ('a', vec![0, 1, 2], 0);
        let b = ('b', vec![2, 1, 0], 0);
        let diagram = space_time_diagram(&[a, b]);
        assert!(
            diagram.contains('X'),
            "the meeting point must be an X:\n{diagram}"
        );
        assert!(diagram.lines().count() >= 4);
    }

    #[test]
    fn empty_diagram_is_graceful() {
        assert_eq!(space_time_diagram(&[]), "(empty)\n");
    }

    #[test]
    fn conflict_timeline_shows_both_projections() {
        // Head-on meeting in row 0: vertex at (0,1), t=1.
        let a = Route::new(0, vec![Cell::new(0, 0), Cell::new(0, 1)]);
        let b = Route::new(1, vec![Cell::new(0, 1), Cell::new(0, 2)]);
        let d = conflict_timeline(&a, &b);
        assert!(d.contains("row(t)") && d.contains("col(t)"), "{d}");
        // Both routes visit column 1 at t=1 → an X in the column projection.
        assert!(d.contains('X'), "{d}");
    }

    #[test]
    fn late_start_is_offset() {
        let a = ('a', vec![0, 0], 3);
        let d = space_time_diagram(&[a]);
        // s=0 row: three dots then the trajectory.
        let row = d.lines().next().expect("row");
        assert!(row.ends_with("···aa"), "{row}");
    }
}
