//! Synthetic online task streams (§VIII-A).
//!
//! Each delivery task incurs three route-planning queries: *pickup*
//! (robot → rack), *transmission* (rack → picker) and *return*
//! (picker → rack home). The paper extracts five days of real tasks per
//! warehouse; we generate streams with the same per-day volumes (scaled by a
//! configurable factor) and a bimodal arrival profile reproducing the
//! morning/noon floods the paper observes in the MC plots (§VIII-B).

use crate::layout::Layout;
use crate::request::{QueryKind, Request, RequestId};
use crate::types::{Cell, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One delivery task: carry `rack` to `picker`, then return it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Task id, unique within a stream.
    pub id: u64,
    /// Arrival (emergence) time.
    pub arrival: Time,
    /// The rack to fetch (a rack grid; also the home slot for the return).
    pub rack: Cell,
    /// The picker station to serve.
    pub picker: Cell,
}

/// Shape of a simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayProfile {
    /// Length of the day in simulated seconds.
    pub horizon: Time,
    /// Number of tasks arriving during the day.
    pub num_tasks: u32,
    /// Weight of the uniform "background" arrival component (0..=1); the
    /// remainder is split between a morning and a noon peak.
    pub background: f64,
}

impl DayProfile {
    /// A day profile with `num_tasks` tasks over `horizon` seconds and the
    /// default 40% background / 30% morning-peak / 30% noon-peak mixture.
    pub fn new(horizon: Time, num_tasks: u32) -> Self {
        DayProfile {
            horizon,
            num_tasks,
            background: 0.4,
        }
    }

    /// Sample one arrival time.
    fn sample_arrival(&self, rng: &mut StdRng) -> Time {
        let h = self.horizon as f64;
        let u: f64 = rng.gen();
        let x = if u < self.background {
            rng.gen::<f64>() * h
        } else if u < self.background + (1.0 - self.background) / 2.0 {
            // Morning peak centred at 20% of the day.
            sample_clamped_normal(rng, 0.20 * h, 0.06 * h, h)
        } else {
            // Noon peak centred at 50% of the day.
            sample_clamped_normal(rng, 0.50 * h, 0.08 * h, h)
        };
        x as Time
    }
}

/// Sample a normal via Box–Muller and clamp into `[0, max)`.
fn sample_clamped_normal(rng: &mut StdRng, mean: f64, sd: f64, max: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
    (mean + sd * z).clamp(0.0, max - 1.0)
}

/// Generate a day of tasks over a layout, sorted by arrival time.
///
/// Racks and pickers are drawn uniformly — real order streams are skewed,
/// but spatial spread is what drives congestion and planner cost, and a
/// uniform draw maximizes spread for a given volume (see DESIGN.md §3).
pub fn generate_tasks(layout: &Layout, profile: &DayProfile, seed: u64) -> Vec<Task> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks = Vec::with_capacity(profile.num_tasks as usize);
    assert!(!layout.rack_cells.is_empty() && !layout.pickers.is_empty());
    for id in 0..profile.num_tasks as u64 {
        let arrival = profile.sample_arrival(&mut rng);
        let rack = layout.rack_cells[rng.gen_range(0..layout.rack_cells.len())];
        let picker = layout.pickers[rng.gen_range(0..layout.pickers.len())];
        tasks.push(Task {
            id,
            arrival,
            rack,
            picker,
        });
    }
    tasks.sort_by_key(|t| (t.arrival, t.id));
    tasks
}

/// Generate a batch of standalone planning requests (for micro-benchmarks
/// and unit experiments that bypass the full simulator).
///
/// Requests arrive at rate roughly `rate_per_sec`; origins are free cells,
/// destinations alternate between rack cells and pickers so the mix touches
/// all three query kinds.
pub fn generate_requests(layout: &Layout, n: usize, rate_per_sec: f64, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let free: Vec<Cell> = layout
        .matrix
        .cells()
        .filter(|&c| layout.matrix.is_free(c))
        .collect();
    let mut t = 0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as RequestId {
        // Exponential inter-arrival.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        t += -u.ln() / rate_per_sec;
        let kind = QueryKind::ALL[(id % 3) as usize];
        let (origin, destination) = match kind {
            QueryKind::Pickup => (
                free[rng.gen_range(0..free.len())],
                layout.rack_cells[rng.gen_range(0..layout.rack_cells.len())],
            ),
            QueryKind::Transmission => (
                layout.rack_cells[rng.gen_range(0..layout.rack_cells.len())],
                layout.pickers[rng.gen_range(0..layout.pickers.len())],
            ),
            QueryKind::Return => (
                layout.pickers[rng.gen_range(0..layout.pickers.len())],
                layout.rack_cells[rng.gen_range(0..layout.rack_cells.len())],
            ),
        };
        out.push(Request::new(id, t as Time, origin, destination, kind));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutConfig;

    #[test]
    fn tasks_are_sorted_and_well_formed() {
        let layout = LayoutConfig::small().generate();
        let profile = DayProfile::new(3600, 200);
        let tasks = generate_tasks(&layout, &profile, 7);
        assert_eq!(tasks.len(), 200);
        for w in tasks.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for t in &tasks {
            assert!(t.arrival < 3600);
            assert!(layout.matrix.is_rack(t.rack));
            assert!(layout.matrix.is_free(t.picker));
        }
    }

    #[test]
    fn task_generation_is_seeded() {
        let layout = LayoutConfig::small().generate();
        let profile = DayProfile::new(3600, 50);
        assert_eq!(
            generate_tasks(&layout, &profile, 1),
            generate_tasks(&layout, &profile, 1)
        );
        assert_ne!(
            generate_tasks(&layout, &profile, 1),
            generate_tasks(&layout, &profile, 2)
        );
    }

    #[test]
    fn arrival_profile_has_peaks() {
        let layout = LayoutConfig::small().generate();
        let profile = DayProfile::new(10_000, 5_000);
        let tasks = generate_tasks(&layout, &profile, 42);
        // Count arrivals near the morning peak (20%) vs a quiet band (80%).
        let near = |center: f64| {
            tasks
                .iter()
                .filter(|t| ((t.arrival as f64 / 10_000.0) - center).abs() < 0.05)
                .count()
        };
        assert!(near(0.20) > 2 * near(0.85), "morning peak missing");
    }

    #[test]
    fn request_batch_mixes_kinds() {
        let layout = LayoutConfig::small().generate();
        let reqs = generate_requests(&layout, 30, 5.0, 3);
        assert_eq!(reqs.len(), 30);
        for kind in QueryKind::ALL {
            assert!(reqs.iter().any(|r| r.kind == kind));
        }
        for w in reqs.windows(2) {
            assert!(w[0].t <= w[1].t, "arrivals must be non-decreasing");
        }
        // Transmission origins are racks; pickups end at racks.
        for r in &reqs {
            match r.kind {
                QueryKind::Pickup => assert!(layout.matrix.is_rack(r.destination)),
                QueryKind::Transmission => assert!(layout.matrix.is_rack(r.origin)),
                QueryKind::Return => assert!(layout.matrix.is_rack(r.destination)),
            }
        }
    }
}
