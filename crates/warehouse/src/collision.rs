//! Ground-truth discrete collision semantics (Definition 3).
//!
//! Two routes collide when they
//!
//! 1. visit the same grid at the same time (**vertex conflict**, Fig. 1(a)),
//!    or
//! 2. pass over each other — exchange adjacent grids across one time step
//!    (**swap conflict**, Fig. 1(b)).
//!
//! This module is the reference implementation every planner is audited
//! against; it deliberately favours clarity and exactness over speed (the
//! fast path is the segment geometry in `carp-geometry`).

use crate::request::RequestId;
use crate::route::Route;
use crate::types::{Cell, Time};
use std::collections::HashMap;

/// The kind of a detected conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Same grid, same time (Fig. 1(a)).
    Vertex,
    /// Two routes exchange adjacent grids over one step (Fig. 1(b)).
    Swap,
}

/// A conflict between two routes, reported with its earliest occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Kind of the conflict.
    pub kind: ConflictKind,
    /// Time of the conflict. For swaps this is the time at which the two
    /// robots *start* exchanging cells (they meet "between" `time` and
    /// `time + 1` — the floor convention of Eq. (3)).
    pub time: Time,
    /// Grid of the conflict: the shared grid for vertex conflicts, the grid
    /// occupied by the first route at `time` for swap conflicts.
    pub cell: Cell,
    /// Indices of the two conflicting routes (when checking sets) or `(0,1)`
    /// for pairwise checks.
    pub routes: (usize, usize),
}

impl Conflict {
    /// Half-step ordering key: a swap reported at `t` physically occurs at
    /// `t + ½`, strictly after a vertex conflict at `t` and strictly before
    /// one at `t + 1`. Matches `SegCollision::order_key` in `carp-geometry`.
    #[inline]
    pub fn order_key(&self) -> u64 {
        (self.time as u64) << 1 | matches!(self.kind, ConflictKind::Swap) as u64
    }
}

/// Find the earliest conflict between two routes, or `None` if they are
/// compatible. Exhaustive over the overlapping time range — O(min duration).
pub fn first_conflict(a: &Route, b: &Route) -> Option<Conflict> {
    let lo = a.start.max(b.start);
    let hi = a.end_time().min(b.end_time());
    if lo > hi {
        return None;
    }
    for t in lo..=hi {
        let pa = a.position_at(t).expect("t within a's span");
        let pb = b.position_at(t).expect("t within b's span");
        if pa == pb {
            return Some(Conflict {
                kind: ConflictKind::Vertex,
                time: t,
                cell: pa,
                routes: (0, 1),
            });
        }
        if t < hi {
            let na = a.position_at(t + 1).expect("t+1 within a's span");
            let nb = b.position_at(t + 1).expect("t+1 within b's span");
            if na == pb && nb == pa && pa != na {
                return Some(Conflict {
                    kind: ConflictKind::Swap,
                    time: t,
                    cell: pa,
                    routes: (0, 1),
                });
            }
        }
    }
    None
}

/// Validate that a whole set of routes is collision-free.
///
/// Runs in `O(total occupancy)` using a `(cell, time)` hash map for vertex
/// conflicts and an edge map for swaps, so it scales to full simulation days.
/// Returns the first conflict found (with the indices of the two offending
/// routes) or `None` when the set is collision-free.
pub fn validate_routes(routes: &[Route]) -> Option<Conflict> {
    // (cell, t) -> route index.
    let mut occupancy: HashMap<(Cell, Time), usize> = HashMap::new();
    // Directed motion (from, to, t) -> route index, for swap detection:
    // a swap by route j against route i exists iff i moved (u -> v) at t and
    // j moved (v -> u) at t.
    let mut motions: HashMap<(Cell, Cell, Time), usize> = HashMap::new();
    let mut best: Option<Conflict> = None;
    // Half-step ordering: a vertex at `t` beats a swap at `t` (which occurs
    // at `t + ½`); among equal keys the first found wins.
    let mut consider = |c: Conflict| {
        if best.is_none_or(|b| c.order_key() < b.order_key()) {
            best = Some(c);
        }
    };

    for (i, r) in routes.iter().enumerate() {
        for (t, cell) in r.occupancy() {
            if let Some(&j) = occupancy.get(&(cell, t)) {
                consider(Conflict {
                    kind: ConflictKind::Vertex,
                    time: t,
                    cell,
                    routes: (j, i),
                });
            } else {
                occupancy.insert((cell, t), i);
            }
        }
        for (k, w) in r.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let t = r.start + k as Time;
            if let Some(&j) = motions.get(&(w[1], w[0], t)) {
                consider(Conflict {
                    kind: ConflictKind::Swap,
                    time: t,
                    cell: w[0],
                    routes: (j, i),
                });
            }
            motions.insert((w[0], w[1], t), i);
        }
    }
    best
}

/// Convenience: `true` when the set of routes is collision-free (Def. 3).
pub fn is_collision_free(routes: &[Route]) -> bool {
    validate_routes(routes).is_none()
}

/// A conflict detected by the [`IncrementalAuditor`], identifying the two
/// offending routes by request id rather than slice index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConflict {
    /// Kind of the conflict.
    pub kind: ConflictKind,
    /// Time of the conflict (floor convention for swaps, as in [`Conflict`]).
    pub time: Time,
    /// Grid of the conflict: the shared grid for vertex conflicts, the grid
    /// occupied by the incoming route at `time` for swap conflicts.
    pub cell: Cell,
    /// The route already held by the auditor.
    pub existing: RequestId,
    /// The route whose commit was refused.
    pub incoming: RequestId,
}

impl AuditConflict {
    /// Half-step ordering key; see [`Conflict::order_key`].
    #[inline]
    pub fn order_key(&self) -> u64 {
        (self.time as u64) << 1 | matches!(self.kind, ConflictKind::Swap) as u64
    }
}

impl core::fmt::Display for AuditConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?} conflict at t={} cell={} between committed request {} and incoming request {}",
            self.kind, self.time, self.cell, self.existing, self.incoming
        )
    }
}

/// Online ground-truth auditor: maintains the `(cell, time)` occupancy and
/// `(from, to, time)` motion maps of all currently committed routes so each
/// new plan can be checked the moment it is committed, in O(route length),
/// instead of re-validating the whole set.
///
/// The accepted set is collision-free by construction (a conflicting commit
/// is refused and **not** inserted), so every map entry belongs to exactly
/// one route and [`IncrementalAuditor::cancel`] / `retire` are exact
/// inverses of [`IncrementalAuditor::commit`]: a commit → cancel → recommit
/// cycle reproduces the same verdicts as batch [`validate_routes`].
#[derive(Debug, Default, Clone)]
pub struct IncrementalAuditor {
    occupancy: HashMap<(Cell, Time), RequestId>,
    motions: HashMap<(Cell, Cell, Time), RequestId>,
    routes: HashMap<RequestId, Route>,
}

impl IncrementalAuditor {
    /// Create an empty auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed routes.
    pub fn active(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are committed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The committed route of a request, if any.
    pub fn route(&self, id: RequestId) -> Option<&Route> {
        self.routes.get(&id)
    }

    /// Iterate all committed `(id, route)` pairs — the auditor's active
    /// set, which the `strict-audit` simulator feature batch-revalidates
    /// against the ground-truth checker on every advance.
    pub fn routes(&self) -> impl Iterator<Item = (&RequestId, &Route)> {
        self.routes.iter()
    }

    /// Audit `route` against every committed route and, when it is
    /// compatible, commit it. On conflict the earliest offence (half-step
    /// ordering) is returned and the auditor state is left unchanged.
    ///
    /// # Panics
    /// Panics when `id` is already committed — cancel it first (route
    /// revisions must be modelled as cancel + commit).
    pub fn commit(&mut self, id: RequestId, route: &Route) -> Result<(), AuditConflict> {
        assert!(
            !self.routes.contains_key(&id),
            "request {id} is already committed; cancel it before recommitting"
        );
        let mut best: Option<AuditConflict> = None;
        let mut consider = |c: AuditConflict| {
            if best.is_none_or(|b| c.order_key() < b.order_key()) {
                best = Some(c);
            }
        };
        for (t, cell) in route.occupancy() {
            if let Some(&j) = self.occupancy.get(&(cell, t)) {
                consider(AuditConflict {
                    kind: ConflictKind::Vertex,
                    time: t,
                    cell,
                    existing: j,
                    incoming: id,
                });
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let t = route.start + k as Time;
            if let Some(&j) = self.motions.get(&(w[1], w[0], t)) {
                consider(AuditConflict {
                    kind: ConflictKind::Swap,
                    time: t,
                    cell: w[0],
                    existing: j,
                    incoming: id,
                });
            }
        }
        if let Some(c) = best {
            return Err(c);
        }
        for (t, cell) in route.occupancy() {
            self.occupancy.insert((cell, t), id);
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            self.motions
                .insert((w[0], w[1], route.start + k as Time), id);
        }
        self.routes.insert(id, route.clone());
        Ok(())
    }

    /// Remove a committed route (the task was aborted); its occupancy and
    /// motions are released. Returns `false` when `id` is unknown.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        let Some(route) = self.routes.remove(&id) else {
            return false;
        };
        for (t, cell) in route.occupancy() {
            let removed = self.occupancy.remove(&(cell, t));
            debug_assert_eq!(removed, Some(id), "occupancy owned by exactly one route");
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let removed = self.motions.remove(&(w[0], w[1], route.start + k as Time));
            debug_assert_eq!(removed, Some(id), "motion owned by exactly one route");
        }
        true
    }

    /// Remove a committed route that finished executing. State-wise this is
    /// identical to [`IncrementalAuditor::cancel`]; the separate name keeps
    /// call sites honest about *why* a route leaves the audit set.
    pub fn retire(&mut self, id: RequestId) -> bool {
        self.cancel(id)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        crate::memory::hashmap_bytes(&self.occupancy)
            + crate::memory::hashmap_bytes(&self.motions)
            + crate::memory::hashmap_bytes(&self.routes)
            + self
                .routes
                .values()
                .map(|r| crate::memory::vec_bytes(&r.grids))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(start: Time, pairs: &[(u16, u16)]) -> Route {
        Route::new(start, pairs.iter().map(|&(r, c)| Cell::new(r, c)).collect())
    }

    #[test]
    fn detects_vertex_conflict() {
        // Both occupy (0,1) at t=1.
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(0, &[(1, 1), (0, 1), (1, 1)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Vertex);
        assert_eq!(c.time, 1);
        assert_eq!(c.cell, Cell::new(0, 1));
    }

    #[test]
    fn detects_swap_conflict() {
        // a: (0,0)->(0,1); b: (0,1)->(0,0) at the same step (Fig. 1(b)).
        let a = route(0, &[(0, 0), (0, 1)]);
        let b = route(0, &[(0, 1), (0, 0)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Swap);
        assert_eq!(c.time, 0);
    }

    #[test]
    fn following_is_not_a_conflict() {
        // b follows a one step behind — legal.
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let b = route(1, &[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn head_on_crossing_at_half_step_is_swap() {
        // a moves east over (0,0)..(0,3); b moves west over the same row,
        // meeting between integer instants.
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let b = route(0, &[(0, 3), (0, 2), (0, 1), (0, 0)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Swap);
        assert_eq!(c.time, 1); // they exchange (0,1)/(0,2) between t=1 and 2
    }

    #[test]
    fn disjoint_time_ranges_never_conflict() {
        let a = route(0, &[(0, 0), (0, 1)]);
        let b = route(10, &[(0, 1), (0, 0)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn same_cell_different_times_ok() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(5, &[(0, 2), (0, 1), (0, 0)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn set_validator_matches_pairwise() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(0, &[(2, 0), (1, 0), (0, 0)]);
        // Head-on over an odd span: both reach (0,1) at t=1 — a vertex conflict.
        let c = route(0, &[(0, 2), (0, 1), (0, 0)]);
        assert!(is_collision_free(&[a.clone(), b.clone()]));
        let conflict = validate_routes(&[a.clone(), b, c.clone()]).expect("conflict");
        assert_eq!(conflict.kind, ConflictKind::Vertex);
        assert_eq!(conflict.time, 1);
        assert_eq!(
            first_conflict(&a, &c).map(|x| (x.kind, x.time)),
            Some((ConflictKind::Vertex, 1))
        );
    }

    #[test]
    fn waiting_robot_blocks_cell() {
        let a = route(0, &[(0, 1), (0, 1), (0, 1), (0, 1)]);
        let b = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Vertex);
        assert_eq!(c.time, 1);
    }

    #[test]
    fn set_validator_reports_earliest_conflict() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let late = route(3, &[(0, 3), (0, 3)]); // vertex at t=3
        let early = route(0, &[(0, 1), (0, 1)]); // vertex at t=1
        let c = validate_routes(&[a, late, early]).expect("conflict");
        assert_eq!(c.time, 1);
    }

    #[test]
    fn vertex_beats_swap_at_the_same_floor_time() {
        // a and b swap between t=1 and t=2 (reported at floor t=1); c has a
        // vertex conflict with a at exactly t=1. The swap occurs at t=1+½,
        // so the vertex must win even though the swap is discovered first.
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(0, &[(1, 2), (0, 2), (0, 1)]);
        let c = route(1, &[(0, 1), (1, 1)]);
        let found = validate_routes(&[a.clone(), b.clone(), c.clone()]).expect("conflict");
        assert_eq!(
            first_conflict(&a, &b).map(|x| (x.kind, x.time)),
            Some((ConflictKind::Swap, 1))
        );
        assert_eq!(
            first_conflict(&a, &c).map(|x| (x.kind, x.time)),
            Some((ConflictKind::Vertex, 1))
        );
        assert_eq!((found.kind, found.time), (ConflictKind::Vertex, 1));
        assert!(
            Conflict {
                kind: ConflictKind::Vertex,
                time: 1,
                cell: Cell::new(0, 1),
                routes: (0, 2)
            }
            .order_key()
                < Conflict {
                    kind: ConflictKind::Swap,
                    time: 1,
                    cell: Cell::new(0, 1),
                    routes: (0, 1)
                }
                .order_key()
        );
    }

    #[test]
    fn auditor_accepts_compatible_and_refuses_conflicting_commits() {
        let mut aud = IncrementalAuditor::new();
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let follower = route(1, &[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(aud.commit(1, &a), Ok(()));
        assert_eq!(aud.commit(2, &follower), Ok(()));
        assert_eq!(aud.active(), 2);

        // Head-on against a: swap between t=1 and t=2.
        let head_on = route(0, &[(0, 3), (0, 2), (0, 1), (0, 0)]);
        let err = aud.commit(3, &head_on).expect_err("swap detected");
        assert_eq!(err.kind, ConflictKind::Swap);
        assert_eq!(err.existing, 1);
        assert_eq!(err.incoming, 3);
        // A refused commit leaves no trace.
        assert_eq!(aud.active(), 2);
        assert!(aud.route(3).is_none());
    }

    #[test]
    fn auditor_reports_earliest_conflict_with_half_step_ordering() {
        let mut aud = IncrementalAuditor::new();
        // Route 7 moves (0,1)→(1,1) at t=1; route 9 sits on (1,1) at t=1.
        assert_eq!(aud.commit(7, &route(1, &[(0, 1), (1, 1)])), Ok(()));
        assert_eq!(aud.commit(9, &route(1, &[(1, 1)])), Ok(()));
        // The incoming route swaps with 7 (between t=1 and 2 ⇒ key 1+½) and
        // has a vertex against 9 at exactly t=1; the vertex must win.
        let incoming = route(1, &[(1, 1), (0, 1)]);
        let err = aud.commit(8, &incoming).expect_err("conflict");
        assert_eq!((err.kind, err.time), (ConflictKind::Vertex, 1));
        assert_eq!(err.existing, 9);
    }

    #[test]
    fn auditor_cancel_releases_capacity() {
        let mut aud = IncrementalAuditor::new();
        let a = route(0, &[(0, 0), (0, 1)]);
        let b = route(0, &[(0, 1), (0, 0)]); // swaps with a
        assert_eq!(aud.commit(1, &a), Ok(()));
        assert!(aud.commit(2, &b).is_err());
        assert!(aud.cancel(1));
        assert!(!aud.cancel(1), "double cancel must fail");
        assert_eq!(aud.commit(2, &b), Ok(()));
        assert!(aud.retire(2));
        assert!(aud.is_empty());
    }

    #[test]
    fn auditor_agrees_with_batch_validator() {
        let routes = [
            route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]),
            route(1, &[(0, 0), (0, 1), (0, 2)]),
            route(0, &[(2, 2), (1, 2), (1, 1)]),
            route(2, &[(1, 1), (1, 2)]), // vertex with the third route at t=2
        ];
        let batch = validate_routes(&routes);
        let mut aud = IncrementalAuditor::new();
        let mut first_refused = None;
        for (i, r) in routes.iter().enumerate() {
            if let Err(c) = aud.commit(i as RequestId, r) {
                first_refused.get_or_insert(c);
            }
        }
        let batch = batch.expect("the set conflicts");
        let online = first_refused.expect("the auditor refuses a commit");
        assert_eq!((batch.kind, batch.time), (online.kind, online.time));
    }

    #[test]
    #[should_panic(expected = "already committed")]
    fn auditor_rejects_duplicate_ids() {
        let mut aud = IncrementalAuditor::new();
        let a = route(0, &[(0, 0), (0, 1)]);
        let _ = aud.commit(1, &a);
        let _ = aud.commit(1, &route(5, &[(3, 3)]));
    }
}
