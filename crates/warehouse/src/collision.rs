//! Ground-truth discrete collision semantics (Definition 3).
//!
//! Two routes collide when they
//!
//! 1. visit the same grid at the same time (**vertex conflict**, Fig. 1(a)),
//!    or
//! 2. pass over each other — exchange adjacent grids across one time step
//!    (**swap conflict**, Fig. 1(b)).
//!
//! This module is the reference implementation every planner is audited
//! against; it deliberately favours clarity and exactness over speed (the
//! fast path is the segment geometry in `carp-geometry`).

use crate::route::Route;
use crate::types::{Cell, Time};
use std::collections::HashMap;

/// The kind of a detected conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Same grid, same time (Fig. 1(a)).
    Vertex,
    /// Two routes exchange adjacent grids over one step (Fig. 1(b)).
    Swap,
}

/// A conflict between two routes, reported with its earliest occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Kind of the conflict.
    pub kind: ConflictKind,
    /// Time of the conflict. For swaps this is the time at which the two
    /// robots *start* exchanging cells (they meet "between" `time` and
    /// `time + 1` — the floor convention of Eq. (3)).
    pub time: Time,
    /// Grid of the conflict: the shared grid for vertex conflicts, the grid
    /// occupied by the first route at `time` for swap conflicts.
    pub cell: Cell,
    /// Indices of the two conflicting routes (when checking sets) or `(0,1)`
    /// for pairwise checks.
    pub routes: (usize, usize),
}

/// Find the earliest conflict between two routes, or `None` if they are
/// compatible. Exhaustive over the overlapping time range — O(min duration).
pub fn first_conflict(a: &Route, b: &Route) -> Option<Conflict> {
    let lo = a.start.max(b.start);
    let hi = a.end_time().min(b.end_time());
    if lo > hi {
        return None;
    }
    for t in lo..=hi {
        let pa = a.position_at(t).expect("t within a's span");
        let pb = b.position_at(t).expect("t within b's span");
        if pa == pb {
            return Some(Conflict { kind: ConflictKind::Vertex, time: t, cell: pa, routes: (0, 1) });
        }
        if t < hi {
            let na = a.position_at(t + 1).expect("t+1 within a's span");
            let nb = b.position_at(t + 1).expect("t+1 within b's span");
            if na == pb && nb == pa && pa != na {
                return Some(Conflict { kind: ConflictKind::Swap, time: t, cell: pa, routes: (0, 1) });
            }
        }
    }
    None
}

/// Validate that a whole set of routes is collision-free.
///
/// Runs in `O(total occupancy)` using a `(cell, time)` hash map for vertex
/// conflicts and an edge map for swaps, so it scales to full simulation days.
/// Returns the first conflict found (with the indices of the two offending
/// routes) or `None` when the set is collision-free.
pub fn validate_routes(routes: &[Route]) -> Option<Conflict> {
    // (cell, t) -> route index.
    let mut occupancy: HashMap<(Cell, Time), usize> = HashMap::new();
    // Directed motion (from, to, t) -> route index, for swap detection:
    // a swap by route j against route i exists iff i moved (u -> v) at t and
    // j moved (v -> u) at t.
    let mut motions: HashMap<(Cell, Cell, Time), usize> = HashMap::new();
    let mut best: Option<Conflict> = None;
    let mut consider = |c: Conflict| {
        if best.map_or(true, |b| c.time < b.time) {
            best = Some(c);
        }
    };

    for (i, r) in routes.iter().enumerate() {
        for (t, cell) in r.occupancy() {
            if let Some(&j) = occupancy.get(&(cell, t)) {
                consider(Conflict { kind: ConflictKind::Vertex, time: t, cell, routes: (j, i) });
            } else {
                occupancy.insert((cell, t), i);
            }
        }
        for (k, w) in r.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let t = r.start + k as Time;
            if let Some(&j) = motions.get(&(w[1], w[0], t)) {
                consider(Conflict { kind: ConflictKind::Swap, time: t, cell: w[0], routes: (j, i) });
            }
            motions.insert((w[0], w[1], t), i);
        }
    }
    best
}

/// Convenience: `true` when the set of routes is collision-free (Def. 3).
pub fn is_collision_free(routes: &[Route]) -> bool {
    validate_routes(routes).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(start: Time, pairs: &[(u16, u16)]) -> Route {
        Route::new(start, pairs.iter().map(|&(r, c)| Cell::new(r, c)).collect())
    }

    #[test]
    fn detects_vertex_conflict() {
        // Both occupy (0,1) at t=1.
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(0, &[(1, 1), (0, 1), (1, 1)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Vertex);
        assert_eq!(c.time, 1);
        assert_eq!(c.cell, Cell::new(0, 1));
    }

    #[test]
    fn detects_swap_conflict() {
        // a: (0,0)->(0,1); b: (0,1)->(0,0) at the same step (Fig. 1(b)).
        let a = route(0, &[(0, 0), (0, 1)]);
        let b = route(0, &[(0, 1), (0, 0)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Swap);
        assert_eq!(c.time, 0);
    }

    #[test]
    fn following_is_not_a_conflict() {
        // b follows a one step behind — legal.
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let b = route(1, &[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn head_on_crossing_at_half_step_is_swap() {
        // a moves east over (0,0)..(0,3); b moves west over the same row,
        // meeting between integer instants.
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let b = route(0, &[(0, 3), (0, 2), (0, 1), (0, 0)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Swap);
        assert_eq!(c.time, 1); // they exchange (0,1)/(0,2) between t=1 and 2
    }

    #[test]
    fn disjoint_time_ranges_never_conflict() {
        let a = route(0, &[(0, 0), (0, 1)]);
        let b = route(10, &[(0, 1), (0, 0)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn same_cell_different_times_ok() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(5, &[(0, 2), (0, 1), (0, 0)]);
        assert_eq!(first_conflict(&a, &b), None);
    }

    #[test]
    fn set_validator_matches_pairwise() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let b = route(0, &[(2, 0), (1, 0), (0, 0)]);
        // Head-on over an odd span: both reach (0,1) at t=1 — a vertex conflict.
        let c = route(0, &[(0, 2), (0, 1), (0, 0)]);
        assert!(is_collision_free(&[a.clone(), b.clone()]));
        let conflict = validate_routes(&[a.clone(), b, c.clone()]).expect("conflict");
        assert_eq!(conflict.kind, ConflictKind::Vertex);
        assert_eq!(conflict.time, 1);
        assert_eq!(first_conflict(&a, &c).map(|x| (x.kind, x.time)), Some((ConflictKind::Vertex, 1)));
    }

    #[test]
    fn waiting_robot_blocks_cell() {
        let a = route(0, &[(0, 1), (0, 1), (0, 1), (0, 1)]);
        let b = route(0, &[(0, 0), (0, 1), (0, 2)]);
        let c = first_conflict(&a, &b).expect("conflict");
        assert_eq!(c.kind, ConflictKind::Vertex);
        assert_eq!(c.time, 1);
    }

    #[test]
    fn set_validator_reports_earliest_conflict() {
        let a = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let late = route(3, &[(0, 3), (0, 3)]); // vertex at t=3
        let early = route(0, &[(0, 1), (0, 1)]); // vertex at t=1
        let c = validate_routes(&[a, late, early]).expect("conflict");
        assert_eq!(c.time, 1);
    }
}
