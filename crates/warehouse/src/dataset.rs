//! Dataset snapshots: serialize a complete benchmark scenario — layout
//! configuration plus the exact task stream — so experiments can be
//! archived, shared and replayed bit-for-bit.
//!
//! The paper evaluates on proprietary warehouse logs; this module is the
//! open equivalent: a [`Dataset`] file pins everything a run depends on
//! (the layout generator is deterministic, so only its configuration is
//! stored, not the matrix).

use crate::layout::{Layout, LayoutConfig};
use crate::tasks::Task;
use serde::{Deserialize, Serialize};

/// Current snapshot format version; bumped on breaking schema changes.
pub const DATASET_VERSION: u32 = 1;

/// A self-contained, replayable benchmark scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Format version ([`DATASET_VERSION`]).
    pub version: u32,
    /// Free-form name ("W-1 Day3" …).
    pub name: String,
    /// Layout generator configuration (regenerates the exact matrix).
    pub layout: LayoutConfig,
    /// The task stream, sorted by arrival.
    pub tasks: Vec<Task>,
}

/// Errors from loading a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying (de)serialization failure.
    Json(serde_json::Error),
    /// The file's version differs from [`DATASET_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The task stream is not sorted by arrival time.
    UnsortedTasks,
    /// A task references a cell outside the generated layout's semantics
    /// (rack not on a rack cell, picker not free).
    InvalidTask {
        /// Index of the offending task.
        index: usize,
    },
}

impl core::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetError::Json(e) => write!(f, "dataset JSON error: {e}"),
            DatasetError::VersionMismatch { found } => {
                write!(f, "dataset version {found}, expected {DATASET_VERSION}")
            }
            DatasetError::UnsortedTasks => write!(f, "task stream not sorted by arrival"),
            DatasetError::InvalidTask { index } => {
                write!(f, "task {index} is inconsistent with the layout")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Json(e)
    }
}

impl Dataset {
    /// Bundle a scenario.
    pub fn new(name: impl Into<String>, layout: LayoutConfig, tasks: Vec<Task>) -> Self {
        Dataset {
            version: DATASET_VERSION,
            name: name.into(),
            layout,
            tasks,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serializes")
    }

    /// Parse and validate a snapshot: version, task ordering, and task /
    /// layout consistency.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        let ds: Dataset = serde_json::from_str(json)?;
        if ds.version != DATASET_VERSION {
            return Err(DatasetError::VersionMismatch { found: ds.version });
        }
        if ds.tasks.windows(2).any(|w| w[0].arrival > w[1].arrival) {
            return Err(DatasetError::UnsortedTasks);
        }
        let layout = ds.layout.generate();
        for (index, t) in ds.tasks.iter().enumerate() {
            let rack_ok = layout.matrix.in_bounds(t.rack) && layout.matrix.is_rack(t.rack);
            let picker_ok = layout.matrix.in_bounds(t.picker) && layout.matrix.is_free(t.picker);
            if !rack_ok || !picker_ok {
                return Err(DatasetError::InvalidTask { index });
            }
        }
        Ok(ds)
    }

    /// Regenerate the layout this dataset was built for.
    pub fn layout(&self) -> Layout {
        self.layout.generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{generate_tasks, DayProfile};
    use crate::types::Cell;

    fn sample() -> Dataset {
        let cfg = LayoutConfig::small();
        let layout = cfg.generate();
        let tasks = generate_tasks(&layout, &DayProfile::new(600, 25), 9);
        Dataset::new("small-day", cfg, tasks)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let ds = sample();
        let json = ds.to_json();
        let back = Dataset::from_json(&json).expect("parses");
        assert_eq!(ds, back);
        // The regenerated layout matches the original configuration.
        assert_eq!(back.layout().matrix, ds.layout.generate().matrix);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut ds = sample();
        ds.version = 999;
        let json = serde_json::to_string(&ds).unwrap();
        match Dataset::from_json(&json) {
            Err(DatasetError::VersionMismatch { found: 999 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_tasks_are_rejected() {
        let mut ds = sample();
        ds.tasks.reverse();
        let json = serde_json::to_string(&ds).unwrap();
        assert!(matches!(
            Dataset::from_json(&json),
            Err(DatasetError::UnsortedTasks)
        ));
    }

    #[test]
    fn task_layout_consistency_is_enforced() {
        let mut ds = sample();
        // Point a task's rack at a free aisle cell.
        ds.tasks[0].rack = Cell::new(0, 0);
        ds.tasks.sort_by_key(|t| t.arrival);
        let json = serde_json::to_string(&ds).unwrap();
        assert!(matches!(
            Dataset::from_json(&json),
            Err(DatasetError::InvalidTask { .. })
        ));
    }

    #[test]
    fn garbage_json_is_an_error() {
        assert!(matches!(
            Dataset::from_json("{not json"),
            Err(DatasetError::Json(_))
        ));
    }
}
