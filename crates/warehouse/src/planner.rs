//! The common interface every CARP planner implements (SRP and the four
//! baselines), plus the plan outcome type.
//!
//! The contract mirrors the online setting of Definition 3: requests arrive
//! one at a time with non-decreasing emergence times; the planner must
//! return a route that is collision-free against **all routes it has already
//! committed** and immediately commit it. The simulator audits this with the
//! ground-truth validator in [`crate::collision`].

use crate::request::{Request, RequestId};
use crate::route::Route;
use crate::types::Time;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cooperative cancellation handle threaded from a service's deadline path
/// into a planner's search loop.
///
/// A token *fires* either when [`CancelToken::cancel`] is called or when
/// its optional wall-clock deadline passes. Planners that honour the token
/// ([`Planner::arm_cancel`]) poll [`CancelToken::fired`] periodically
/// inside their search and abandon the request early — turning an
/// over-budget plan that would be cancelled *post-commit* into one that
/// never finishes planning at all. Polling is cooperative: a planner that
/// ignores the token is merely slower to refuse, never incorrect, because
/// the service re-checks the deadline on the answer path.
///
/// Cloning shares the fired flag (it is the whole point: the arming side
/// keeps one clone, the search polls the other).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that fires only on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` passes, without
    /// anyone calling [`CancelToken::cancel`] — the shape the service's
    /// per-request planning budget wants.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Fire the token explicitly.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly or by deadline). Reads the
    /// clock only when a deadline is armed, so deadline-free tokens cost
    /// one relaxed atomic load per poll.
    pub fn fired(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Result of a single planning call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOutcome {
    /// A collision-free route was found and committed.
    Planned(Route),
    /// No route exists under the planner's search restrictions (rare; the
    /// simulator re-submits the request at a later timestamp).
    Infeasible,
}

impl PlanOutcome {
    /// The planned route, if any.
    pub fn route(&self) -> Option<&Route> {
        match self {
            PlanOutcome::Planned(r) => Some(r),
            PlanOutcome::Infeasible => None,
        }
    }
}

/// Operation metrics of a planner's collision backend: the sharded segment
/// store engine (SRP) or the grid-level reservation table (the baselines).
/// Defined here (rather than next to the engine) so the simulator can read
/// them through the object-safe [`Planner`] interface without depending on
/// the geometry crate's concrete engine type.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Batched collision-probe calls issued so far.
    pub probe_batches: u64,
    /// Individual collision queries across all probe batches.
    pub probe_queries: u64,
    /// Mean partition fan-out per probe batch (1.0 = fully serial).
    pub probe_parallelism: f64,
    /// Share of probe batches that actually ran on scoped threads (0.0 on
    /// single-core hosts or below the fan-out threshold — the number that
    /// tells a perf job whether sharding engaged at all).
    pub probe_parallel_share: f64,
    /// Mean segments retired per removal batch.
    pub retire_batch_size: f64,
    /// Batched edge-cost evaluation calls issued by the inter-strip
    /// search's frontier batching (`eval_many`); zero for planners without
    /// a batched search.
    pub eval_batches: u64,
    /// Individual edge evaluations across all evaluation batches.
    pub eval_jobs: u64,
    /// Share of evaluation batches that actually ran on scoped threads —
    /// the number that tells a perf job whether search parallelism engaged
    /// at all.
    pub eval_parallel_share: f64,
    /// Cumulative soft-layer (beyond-window) reservation bookings. Zero for
    /// planners that pre-check every commit against the full table; positive
    /// under TWP's optimistic beyond-window commits, which book their
    /// unverified tails in the reservation table's multi-owner soft layer
    /// until a window slide promotes them.
    pub soft_bookings: u64,
    /// Soft bookings that sit below the last repair round's window end —
    /// optimism the slide should have promoted into the exclusive hard
    /// layer but could not (failed repairs). Hard-layer exclusivity itself
    /// is asserted in the table, so this is the *only* window-consistency
    /// debt a windowed planner can carry.
    pub window_debt: u64,
}

/// A collision-aware route planner operating in the online setting.
pub trait Planner {
    /// Short display name ("SRP", "SAP", …) used in experiment output.
    fn name(&self) -> &'static str;

    /// Plan a route for `req` starting no earlier than `req.t`, avoiding all
    /// previously committed routes, and commit it.
    fn plan(&mut self, req: &Request) -> PlanOutcome;

    /// Notify the planner that simulated time advanced to `now`.
    ///
    /// Planners use this to retire finished routes (bounding memory) and —
    /// for windowed planners such as TWP — to extend/replan committed
    /// routes. Returns route *revisions*: `(request id, new full route)`
    /// pairs the simulator must adopt. The default does nothing.
    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        let _ = now;
        Vec::new()
    }

    /// Next absolute time the planner needs an [`Planner::advance`] call
    /// even if nothing else happens — e.g. a windowed planner's scheduled
    /// repair round. `None` when the planner has no time-driven duties
    /// (the default, and the permanent answer of non-windowed planners).
    ///
    /// Event-driven drivers (the simulator) must schedule a wake-up at
    /// this time: without it, the repair cadence silently stretches to the
    /// next natural event, and deferred beyond-window conflicts can come
    /// due with no repair opportunity.
    fn next_wakeup(&self) -> Option<Time> {
        None
    }

    /// Bytes of live planner state: collision structures, caches, committed
    /// routes. This is the MC metric of §VIII-A, measured by deterministic
    /// data-structure accounting rather than JVM heap sampling.
    fn memory_bytes(&self) -> usize;

    /// Human-readable provenance of a committed route: which internal
    /// search path produced it (direct search, retry, fallback, …) plus any
    /// planner-specific structure (strip chain, boundary crossings). Purely
    /// diagnostic — the audit layer attaches it to conflict reports so a
    /// bad route can be traced to the code path that emitted it. Planners
    /// without provenance tracking return `None` (the default).
    fn provenance(&self, id: RequestId) -> Option<String> {
        let _ = id;
        None
    }

    /// Arm (or clear, with `None`) a cooperative cancellation token for
    /// subsequent [`Planner::plan`] calls: a search that observes the token
    /// fire should abandon the request and report
    /// [`PlanOutcome::Infeasible`] without committing anything. The arming
    /// side distinguishes a genuine infeasibility from an aborted search by
    /// checking [`CancelToken::fired`] after the call. The default ignores
    /// the token (planners without in-search polling are refused by the
    /// service's post-plan deadline check instead).
    fn arm_cancel(&mut self, token: Option<CancelToken>) {
        let _ = token;
    }

    /// Cancel a committed route (the task was aborted): its reservations /
    /// segments are released so later requests may use the freed capacity.
    ///
    /// Returns `false` when the id is unknown or already retired. The
    /// default implementation refuses (`false`); every planner in this
    /// workspace overrides it.
    fn cancel(&mut self, id: RequestId) -> bool {
        let _ = id;
        false
    }

    /// Operation metrics of the planner's sharded store engine. `None` (the
    /// default) for planners without one; SRP reports the probe/retirement
    /// counters of its `carp_geometry::engine::StoreEngine`, which the
    /// simulator folds into the day report.
    fn engine_metrics(&self) -> Option<EngineMetrics> {
        None
    }

    /// Plan a whole batch `Q_t` (Definition 3 hands the planner a *set* of
    /// pairs per timestamp). The default processes requests shortest-first
    /// — the standard prioritization that lets short hops slip through
    /// before long routes lock corridors — and returns outcomes in the
    /// *input* order.
    fn plan_batch(&mut self, requests: &[Request]) -> Vec<PlanOutcome> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].distance_lower_bound(), requests[i].id));
        let mut out = vec![PlanOutcome::Infeasible; requests.len()];
        for i in order {
            out[i] = self.plan(&requests[i]);
        }
        out
    }
}

/// The plan/validate/commit split behind the speculative multi-worker
/// commit pipeline in `carp-service`.
///
/// The online contract (Definition 3) makes commits a linearization point:
/// every route must be collision-checked against *all previously committed*
/// routes. A single thread that both plans and commits satisfies it the
/// blunt way — planning latency serializes the whole service. This trait
/// decouples the two: worker threads each own a **replica** of the
/// committed state ([`SpeculativePlanner::fork`]) kept in sync by replaying
/// the commit stage's op log, plan candidates against it **without
/// committing** ([`SpeculativePlanner::plan_candidate`]), and a single
/// validate-and-commit stage re-checks each candidate against routes
/// committed since the candidate's snapshot epoch before adopting it
/// ([`SpeculativePlanner::adopt`]) — in strict admission order, so the
/// serial contract is preserved.
///
/// Determinism requirement: `plan_candidate` must be the *same pure
/// function of the committed state* as [`Planner::plan`]'s search (a
/// replica synced to the full committed set must produce bit-identical
/// routes), and `adopt` followed by `advance`/`cancel` replay must
/// reconstruct the committed state exactly. Under the planner's monotone
/// tie-breaking (the route chosen among feasible routes of a state is also
/// chosen in any less-constrained state where it remains feasible), a
/// stale candidate that validates clean against the newer commits is
/// bit-identical to what the serial planner would have produced — the
/// property the service's conformance suite pins across worker counts
/// (DESIGN.md §13).
///
/// Windowed/revising planners (TWP, RP) do not implement this trait: their
/// `advance` rewrites committed routes, so a candidate's validity cannot be
/// judged by conflict-checking alone.
pub trait SpeculativePlanner: Planner + Sized {
    /// Fork a worker-local replica of the full committed state. Called once
    /// per worker at spawn; afterwards the replica is kept in sync by
    /// replaying `adopt` / `cancel` / `advance` ops, never re-forked.
    fn fork(&self) -> Self;

    /// Plan a candidate route against the replica's committed state
    /// **without committing it** — the exact search [`Planner::plan`] would
    /// run (including retries and fallbacks), minus the commit.
    fn plan_candidate(&mut self, req: &Request) -> Option<Route>;

    /// Adopt an externally validated route into the committed state without
    /// re-running the search (decompose + reserve only). The commit stage
    /// calls this on the authoritative planner for every validated winner;
    /// workers call it while replaying the op log into their replicas.
    fn adopt(&mut self, id: RequestId, route: &Route);
}

impl<P: Planner + ?Sized> Planner for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        (**self).plan(req)
    }
    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        (**self).advance(now)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn provenance(&self, id: RequestId) -> Option<String> {
        (**self).provenance(id)
    }
    fn arm_cancel(&mut self, token: Option<CancelToken>) {
        (**self).arm_cancel(token)
    }
    fn cancel(&mut self, id: RequestId) -> bool {
        (**self).cancel(id)
    }
    fn engine_metrics(&self) -> Option<EngineMetrics> {
        (**self).engine_metrics()
    }
    fn plan_batch(&mut self, requests: &[Request]) -> Vec<PlanOutcome> {
        (**self).plan_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Cell;

    struct Dummy;
    impl Planner for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_advance_is_a_noop() {
        let mut d = Dummy;
        assert!(d.advance(10).is_empty());
    }

    #[test]
    fn batch_planning_preserves_input_order() {
        struct Echo;
        impl Planner for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn plan(&mut self, req: &Request) -> PlanOutcome {
                PlanOutcome::Planned(Route::stationary(req.t, req.origin))
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        let reqs = vec![
            Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(9, 9),
                crate::QueryKind::Pickup,
            ),
            Request::new(
                1,
                0,
                Cell::new(5, 5),
                Cell::new(5, 6),
                crate::QueryKind::Pickup,
            ),
        ];
        let outcomes = Echo.plan_batch(&reqs);
        assert_eq!(outcomes.len(), 2);
        // Outcome i corresponds to request i despite shortest-first order.
        assert_eq!(outcomes[0].route().unwrap().origin(), Cell::new(0, 0));
        assert_eq!(outcomes[1].route().unwrap().origin(), Cell::new(5, 5));
    }

    #[test]
    fn cancel_token_fires_explicitly_and_by_deadline() {
        let t = CancelToken::new();
        assert!(!t.fired());
        let shared = t.clone();
        shared.cancel();
        assert!(t.fired(), "clones share the fired flag");

        let past = CancelToken::with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        assert!(past.fired(), "elapsed deadline fires without cancel()");
        let future =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(600));
        assert!(!future.fired());
        future.cancel();
        assert!(future.fired(), "explicit cancel overrides a live deadline");
    }

    #[test]
    fn default_arm_cancel_is_a_noop() {
        let mut d = Dummy;
        d.arm_cancel(Some(CancelToken::new()));
        d.arm_cancel(None);
        assert!(matches!(
            d.plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(1, 1),
                crate::QueryKind::Pickup
            )),
            PlanOutcome::Planned(_)
        ));
    }

    #[test]
    fn outcome_route_accessor() {
        let r = Route::stationary(0, Cell::new(0, 0));
        assert_eq!(PlanOutcome::Planned(r.clone()).route(), Some(&r));
        assert_eq!(PlanOutcome::Infeasible.route(), None);
    }
}
