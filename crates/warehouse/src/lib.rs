//! Problem domain for Collision-Aware Route Planning (CARP) in robotized
//! warehouses, following the problem statement of the ICDE'23 paper
//! *"Collision-Aware Route Planning in Warehouses Made Efficient: A
//! Strip-based Framework"* (§II).
//!
//! This crate is the substrate every planner in the workspace builds on:
//!
//! * [`matrix::WarehouseMatrix`] — the grid matrix `M` (Definition 1);
//! * [`route::Route`] — timed grid sequences (Definition 2);
//! * [`collision`] — the exact discrete conflict semantics (Definition 3),
//!   used as ground truth by every test and by the simulator's audit mode;
//! * [`layout`] — a parametric generator for realistic warehouse layouts with
//!   2×l rack clusters, aisles and picker stations, including presets that
//!   match the paper's W-1/W-2/W-3 datasets (Table II);
//! * [`tasks`] — online delivery-task streams (pickup / transmission /
//!   return queries, §VIII-A);
//! * [`planner`] — the [`planner::Planner`] trait implemented by SRP and all
//!   baselines.
//!
//! The crate is deliberately free of any planning logic; it only defines the
//! problem and the data that feeds it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collision;
pub mod dataset;
pub mod layout;
pub mod matrix;
pub mod memory;
pub mod planner;
pub mod render;
pub mod request;
pub mod route;
pub mod tasks;
pub mod types;

pub use collision::{
    first_conflict, validate_routes, AuditConflict, Conflict, ConflictKind, IncrementalAuditor,
};
pub use dataset::{Dataset, DatasetError};
pub use layout::{LayoutConfig, LayoutStats, WarehousePreset};
pub use matrix::{AsciiMapError, WarehouseMatrix};
pub use planner::{CancelToken, EngineMetrics, PlanOutcome, Planner};
pub use request::{QueryKind, Request, RequestId};
pub use route::Route;
pub use types::{Cell, Dir, Time, INFINITY_TIME};
