//! Routes (Definition 2): a start moving time plus an ordered sequence of
//! visited grids, one grid per second.

use crate::matrix::WarehouseMatrix;
use crate::types::{Cell, Time};
use serde::{Deserialize, Serialize};

/// A route `r = ⟨st_r, G_r⟩` (Definition 2).
///
/// The robot occupies `grids[i]` exactly at time `start + i`. Consecutive
/// grids are either identical (the robot waits) or 4-adjacent (the robot
/// moves one grid). Note the paper's Definition 2 states grids are visited at
/// unit speed; waiting is expressed by repeating a grid, which is how the
/// segment representation's slope-0 segments materialize at grid level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Start moving time `st_r`.
    pub start: Time,
    /// Ordered visiting grids `G_r`.
    pub grids: Vec<Cell>,
}

/// Errors raised by [`Route::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The grid sequence is empty.
    Empty,
    /// Two consecutive grids are neither equal nor 4-adjacent.
    IllegalStep {
        /// Index of the offending step within `grids`.
        at: usize,
    },
    /// The route leaves the matrix bounds.
    OutOfBounds {
        /// Index of the offending grid.
        at: usize,
    },
    /// The route traverses a rack grid at a non-endpoint position.
    ThroughRack {
        /// Index of the offending grid.
        at: usize,
    },
}

impl core::fmt::Display for RouteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RouteError::Empty => write!(f, "route has no grids"),
            RouteError::IllegalStep { at } => write!(f, "illegal step at index {at}"),
            RouteError::OutOfBounds { at } => write!(f, "grid out of bounds at index {at}"),
            RouteError::ThroughRack { at } => write!(f, "route crosses a rack at index {at}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl Route {
    /// Construct a route; `grids` must be non-empty.
    pub fn new(start: Time, grids: Vec<Cell>) -> Self {
        debug_assert!(!grids.is_empty());
        Route { start, grids }
    }

    /// A route that stays at `cell` for a single instant.
    pub fn stationary(start: Time, cell: Cell) -> Self {
        Route {
            start,
            grids: vec![cell],
        }
    }

    /// First grid of the route.
    #[inline]
    pub fn origin(&self) -> Cell {
        self.grids[0]
    }

    /// Last grid of the route.
    #[inline]
    pub fn destination(&self) -> Cell {
        *self.grids.last().expect("route is non-empty")
    }

    /// The time the robot occupies the last grid: `start + |G_r| - 1`.
    ///
    /// The paper's makespan expression `st_r + |G_r|` counts one past the
    /// last occupied instant; we expose both (see [`Route::finish_exclusive`]).
    #[inline]
    pub fn end_time(&self) -> Time {
        self.start + (self.grids.len() as Time - 1)
    }

    /// `st_r + |G_r|`, the term that appears in the makespan objective Eq.(1).
    #[inline]
    pub fn finish_exclusive(&self) -> Time {
        self.start + self.grids.len() as Time
    }

    /// Duration in time steps (number of moves/waits).
    #[inline]
    pub fn duration(&self) -> Time {
        self.grids.len() as Time - 1
    }

    /// The grid occupied at absolute time `t`, if the route is active then.
    ///
    /// Returns `None` before `start` and after [`Route::end_time`] — robots
    /// disappear at their target (the standard online-MAPF assumption; see
    /// DESIGN.md §3).
    #[inline]
    pub fn position_at(&self, t: Time) -> Option<Cell> {
        if t < self.start {
            return None;
        }
        let i = (t - self.start) as usize;
        self.grids.get(i).copied()
    }

    /// Iterate `(time, cell)` occupancy pairs.
    pub fn occupancy(&self) -> impl Iterator<Item = (Time, Cell)> + '_ {
        self.grids
            .iter()
            .enumerate()
            .map(move |(i, &g)| (self.start + i as Time, g))
    }

    /// Check route integrity: non-empty, within bounds, unit steps, and not
    /// crossing racks except at the two endpoints (rack grids may be query
    /// endpoints — see DESIGN.md §3 "Rack-grid endpoints").
    pub fn validate(&self, m: &WarehouseMatrix) -> Result<(), RouteError> {
        if self.grids.is_empty() {
            return Err(RouteError::Empty);
        }
        // A robot may dwell under a rack at its endpoints (waiting to
        // depart after pickup, or arriving) but never traverse one mid-route.
        let head_dwell = self
            .grids
            .iter()
            .take_while(|&&g| g == self.grids[0])
            .count()
            - 1;
        let last = self.grids.len() - 1;
        let tail_cell = self.grids[last];
        let tail_dwell = self
            .grids
            .iter()
            .rev()
            .take_while(|&&g| g == tail_cell)
            .count()
            - 1;
        for (i, &g) in self.grids.iter().enumerate() {
            if !m.in_bounds(g) {
                return Err(RouteError::OutOfBounds { at: i });
            }
            if m.is_rack(g) && i > head_dwell && i < last - tail_dwell {
                return Err(RouteError::ThroughRack { at: i });
            }
        }
        for (i, w) in self.grids.windows(2).enumerate() {
            let legal = w[0] == w[1] || w[0].is_adjacent(w[1]);
            if !legal {
                return Err(RouteError::IllegalStep { at: i + 1 });
            }
        }
        Ok(())
    }

    /// Append another route that starts where/when this one ends.
    ///
    /// `other.start` must equal `self.end_time()` and `other.origin()` must
    /// equal `self.destination()`; the duplicated junction grid is dropped.
    pub fn chain(&mut self, other: &Route) {
        assert_eq!(
            other.start,
            self.end_time(),
            "chained route must start at end time"
        );
        assert_eq!(
            other.origin(),
            self.destination(),
            "chained route must start at end cell"
        );
        self.grids.extend_from_slice(&other.grids[1..]);
    }

    /// Approximate heap footprint in bytes (for the MC metric).
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.grids.capacity() * core::mem::size_of::<Cell>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(pairs: &[(u16, u16)]) -> Vec<Cell> {
        pairs.iter().map(|&(r, c)| Cell::new(r, c)).collect()
    }

    #[test]
    fn position_and_times() {
        let r = Route::new(10, cells(&[(0, 0), (0, 1), (0, 1), (1, 1)]));
        assert_eq!(r.position_at(9), None);
        assert_eq!(r.position_at(10), Some(Cell::new(0, 0)));
        assert_eq!(r.position_at(12), Some(Cell::new(0, 1)));
        assert_eq!(r.position_at(13), Some(Cell::new(1, 1)));
        assert_eq!(r.position_at(14), None);
        assert_eq!(r.end_time(), 13);
        assert_eq!(r.finish_exclusive(), 14);
        assert_eq!(r.duration(), 3);
    }

    #[test]
    fn validate_accepts_waits_and_moves() {
        let m = WarehouseMatrix::empty(4, 4);
        let r = Route::new(0, cells(&[(0, 0), (0, 0), (0, 1), (1, 1)]));
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn validate_rejects_diagonal_and_jump() {
        let m = WarehouseMatrix::empty(4, 4);
        let diag = Route::new(0, cells(&[(0, 0), (1, 1)]));
        assert_eq!(diag.validate(&m), Err(RouteError::IllegalStep { at: 1 }));
        let jump = Route::new(0, cells(&[(0, 0), (0, 2)]));
        assert_eq!(jump.validate(&m), Err(RouteError::IllegalStep { at: 1 }));
    }

    #[test]
    fn validate_rejects_mid_route_rack_but_allows_endpoints() {
        let m = WarehouseMatrix::from_ascii("...\n.#.\n...");
        let through = Route::new(0, cells(&[(1, 0), (1, 1), (1, 2)]));
        assert_eq!(through.validate(&m), Err(RouteError::ThroughRack { at: 1 }));
        let to_rack = Route::new(0, cells(&[(1, 0), (1, 1)]));
        assert!(to_rack.validate(&m).is_ok());
        let from_rack = Route::new(0, cells(&[(1, 1), (1, 0)]));
        assert!(from_rack.validate(&m).is_ok());
    }

    #[test]
    fn chain_concatenates() {
        let mut a = Route::new(0, cells(&[(0, 0), (0, 1)]));
        let b = Route::new(1, cells(&[(0, 1), (0, 2), (0, 3)]));
        a.chain(&b);
        assert_eq!(a.grids, cells(&[(0, 0), (0, 1), (0, 2), (0, 3)]));
        assert_eq!(a.end_time(), 3);
    }

    #[test]
    #[should_panic(expected = "start at end time")]
    fn chain_rejects_time_gap() {
        let mut a = Route::new(0, cells(&[(0, 0), (0, 1)]));
        let b = Route::new(5, cells(&[(0, 1), (0, 2)]));
        a.chain(&b);
    }

    #[test]
    fn occupancy_enumerates_all_instants() {
        let r = Route::new(3, cells(&[(2, 2), (2, 3), (2, 3)]));
        let occ: Vec<(Time, Cell)> = r.occupancy().collect();
        assert_eq!(
            occ,
            vec![
                (3, Cell::new(2, 2)),
                (4, Cell::new(2, 3)),
                (5, Cell::new(2, 3)),
            ]
        );
    }
}
