//! The warehouse matrix `M` (Definition 1): an `H × W` boolean grid where
//! `true` marks a rack and `false` a free (traversable) grid.

use crate::types::{Cell, Dir};
use serde::{Deserialize, Serialize};

/// Why an ASCII map failed to parse (see [`WarehouseMatrix::try_from_ascii`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsciiMapError {
    /// The map has no non-blank lines.
    Empty,
    /// A line's length differs from the first line's (0-based index).
    Ragged {
        /// 0-based index of the offending line.
        line: usize,
    },
    /// A character is neither a rack (`#`/`@`/`T`) nor an aisle (`.`/` `).
    UnknownChar {
        /// 0-based index of the offending line.
        line: usize,
        /// The unrecognized character.
        ch: char,
    },
}

impl core::fmt::Display for AsciiMapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsciiMapError::Empty => write!(f, "empty ascii map"),
            AsciiMapError::Ragged { line } => write!(f, "ragged ascii map at line {line}"),
            AsciiMapError::UnknownChar { line, ch } => {
                write!(f, "unknown map character {ch:?} at line {line}")
            }
        }
    }
}

impl std::error::Error for AsciiMapError {}

/// Grid matrix representation of a warehouse (Definition 1).
///
/// Stored as a dense bit-per-cell vector for cache-friendly scanning; all
/// planners in the workspace address cells either as [`Cell`] coordinates or
/// as dense `u32` indices (`row * width + col`) obtained via
/// [`WarehouseMatrix::index_of`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarehouseMatrix {
    rows: u16,
    cols: u16,
    /// `racks[idx]` is `true` when the cell holds a rack.
    racks: Vec<bool>,
}

impl WarehouseMatrix {
    /// Create an empty (all-aisle) matrix of `rows × cols` grids.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn empty(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "warehouse must be non-empty");
        WarehouseMatrix {
            rows,
            cols,
            racks: vec![false; rows as usize * cols as usize],
        }
    }

    /// Parse a matrix from an ASCII map: `#`/`@`/`T` are racks, `.`/` ` are
    /// aisles. Lines must be equal length. Convenient for tests and examples.
    ///
    /// # Panics
    /// Panics on ragged lines, unknown characters, or an empty map; see
    /// [`Self::try_from_ascii`] for the fallible companion.
    pub fn from_ascii(map: &str) -> Self {
        Self::try_from_ascii(map).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible companion of [`Self::from_ascii`] for untrusted input
    /// (CLI-supplied map files): returns a parse error instead of panicking.
    pub fn try_from_ascii(map: &str) -> Result<Self, AsciiMapError> {
        let lines: Vec<&str> = map.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            return Err(AsciiMapError::Empty);
        }
        let cols = lines[0].trim().len();
        let mut m = WarehouseMatrix::empty(lines.len() as u16, cols as u16);
        for (i, line) in lines.iter().enumerate() {
            let line = line.trim();
            if line.len() != cols {
                return Err(AsciiMapError::Ragged { line: i });
            }
            for (j, ch) in line.chars().enumerate() {
                let rack = match ch {
                    '#' | '@' | 'T' => true,
                    '.' | ' ' => false,
                    other => return Err(AsciiMapError::UnknownChar { line: i, ch: other }),
                };
                m.set_rack(Cell::new(i as u16, j as u16), rack);
            }
        }
        Ok(m)
    }

    /// Render the matrix as an ASCII map (inverse of [`Self::from_ascii`]).
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols as usize + 1) * self.rows as usize);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(if self.is_rack(Cell::new(i, j)) {
                    '#'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }

    /// Number of rows (`H`, the warehouse length).
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns (`W`, the warehouse width).
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of grids `H × W`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.racks.len()
    }

    /// Number of rack grids.
    pub fn num_racks(&self) -> usize {
        self.racks.iter().filter(|&&r| r).count()
    }

    /// Dense index of a cell: `row * W + col`.
    #[inline]
    pub fn index_of(&self, c: Cell) -> u32 {
        debug_assert!(self.in_bounds(c));
        c.row as u32 * self.cols as u32 + c.col as u32
    }

    /// Inverse of [`Self::index_of`].
    #[inline]
    pub fn cell_of(&self, idx: u32) -> Cell {
        debug_assert!((idx as usize) < self.racks.len());
        Cell::new(
            (idx / self.cols as u32) as u16,
            (idx % self.cols as u32) as u16,
        )
    }

    /// Whether the cell lies inside the matrix.
    #[inline]
    pub fn in_bounds(&self, c: Cell) -> bool {
        c.row < self.rows && c.col < self.cols
    }

    /// Whether the cell holds a rack (`M[i,j] = true`).
    #[inline]
    pub fn is_rack(&self, c: Cell) -> bool {
        self.racks[self.index_of(c) as usize]
    }

    /// Whether a robot may traverse the cell (`M[i,j] = false`).
    #[inline]
    pub fn is_free(&self, c: Cell) -> bool {
        !self.is_rack(c)
    }

    /// Place or remove a rack.
    pub fn set_rack(&mut self, c: Cell, rack: bool) {
        let idx = self.index_of(c) as usize;
        self.racks[idx] = rack;
    }

    /// Iterate the free (traversable) neighbours of `c` in the four axis
    /// directions.
    pub fn free_neighbors(&self, c: Cell) -> impl Iterator<Item = Cell> + '_ {
        Dir::ALL
            .into_iter()
            .filter_map(move |d| c.step(d, self.rows, self.cols))
            .filter(move |&n| self.is_free(n))
    }

    /// Iterate all in-bound neighbours of `c` (free or rack).
    pub fn neighbors(&self, c: Cell) -> impl Iterator<Item = Cell> + '_ {
        Dir::ALL
            .into_iter()
            .filter_map(move |d| c.step(d, self.rows, self.cols))
    }

    /// Iterate every cell in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.rows).flat_map(move |i| (0..self.cols).map(move |j| Cell::new(i, j)))
    }

    /// Whether the entire row `i` is free of racks — such rows become the
    /// long latitudinal aisle strips of Algorithm 1.
    pub fn row_is_all_free(&self, i: u16) -> bool {
        let start = i as usize * self.cols as usize;
        self.racks[start..start + self.cols as usize]
            .iter()
            .all(|&r| !r)
    }

    /// Number of undirected grid-graph edges between free or rack cells —
    /// the "grid-based #edges" column of Table II counts 4-adjacency over
    /// all grids.
    pub fn grid_edge_count(&self) -> usize {
        let r = self.rows as usize;
        let c = self.cols as usize;
        r * (c - 1) + c * (r - 1)
    }

    /// Approximate heap footprint in bytes (for the MC metric).
    pub fn memory_bytes(&self) -> usize {
        self.racks.capacity() * core::mem::size_of::<bool>() + core::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let map = "....\n.##.\n.##.\n....\n";
        let m = WarehouseMatrix::from_ascii(map);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.num_racks(), 4);
        assert_eq!(m.to_ascii(), map);
    }

    #[test]
    fn index_roundtrip() {
        let m = WarehouseMatrix::empty(7, 11);
        for c in m.cells() {
            assert_eq!(m.cell_of(m.index_of(c)), c);
        }
    }

    #[test]
    fn free_neighbors_respect_racks_and_bounds() {
        let m = WarehouseMatrix::from_ascii("...\n.#.\n...");
        let center_neighbors: Vec<Cell> = m.free_neighbors(Cell::new(1, 0)).collect();
        // (1,1) is a rack; (0,0) and (2,0) remain.
        assert_eq!(center_neighbors, vec![Cell::new(0, 0), Cell::new(2, 0)]);
        let corner: Vec<Cell> = m.free_neighbors(Cell::new(0, 0)).collect();
        assert_eq!(corner, vec![Cell::new(1, 0), Cell::new(0, 1)]);
    }

    #[test]
    fn row_all_free_detection() {
        let m = WarehouseMatrix::from_ascii("...\n.#.\n...");
        assert!(m.row_is_all_free(0));
        assert!(!m.row_is_all_free(1));
        assert!(m.row_is_all_free(2));
    }

    #[test]
    fn grid_edge_count_matches_small_case() {
        // 2x2 grid: 2 horizontal + 2 vertical edges.
        let m = WarehouseMatrix::empty(2, 2);
        assert_eq!(m.grid_edge_count(), 4);
        // Table II sanity: edges ≈ 2·H·W for large grids.
        let m = WarehouseMatrix::empty(233, 104);
        assert_eq!(m.num_cells(), 24232);
        assert_eq!(m.grid_edge_count(), 233 * 103 + 104 * 232);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_ascii_rejected() {
        WarehouseMatrix::from_ascii("...\n..\n");
    }

    #[test]
    fn try_from_ascii_reports_errors_instead_of_panicking() {
        assert_eq!(
            WarehouseMatrix::try_from_ascii("\n  \n"),
            Err(AsciiMapError::Empty)
        );
        assert_eq!(
            WarehouseMatrix::try_from_ascii("...\n..\n"),
            Err(AsciiMapError::Ragged { line: 1 })
        );
        assert_eq!(
            WarehouseMatrix::try_from_ascii("...\n.x.\n"),
            Err(AsciiMapError::UnknownChar { line: 1, ch: 'x' })
        );
        let ok = WarehouseMatrix::try_from_ascii(".#.\n...\n").expect("valid map");
        assert_eq!(ok.num_racks(), 1);
        // Error messages are stable (the panicking wrapper relies on them).
        assert_eq!(
            AsciiMapError::Ragged { line: 3 }.to_string(),
            "ragged ascii map at line 3"
        );
        assert!(AsciiMapError::UnknownChar { line: 0, ch: '?' }
            .to_string()
            .contains("unknown map character"));
    }
}
