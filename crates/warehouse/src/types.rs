//! Elementary types shared across the workspace: discrete time, grid cells
//! and movement directions.

use serde::{Deserialize, Serialize};

/// Discrete time in seconds. Robots move exactly one grid per second (§II,
/// Definition 2), so every event in the system happens at an integer time.
pub type Time = u32;

/// Sentinel "never" time, used e.g. as the collision time of non-colliding
/// segments (the paper's `INF` in Algorithm 3).
pub const INFINITY_TIME: Time = Time::MAX;

/// A grid cell `⟨row, col⟩` of the warehouse matrix.
///
/// Rows grow southwards, columns eastwards; the unit length is the grid
/// width (Definition 1). Cells are plain value types and are `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// Row index (`i` in the paper's `⟨i, j⟩`).
    pub row: u16,
    /// Column index (`j` in the paper's `⟨i, j⟩`).
    pub col: u16,
}

impl Cell {
    /// Construct a cell from row/column indices.
    #[inline]
    pub const fn new(row: u16, col: u16) -> Self {
        Cell { row, col }
    }

    /// Manhattan (L1) distance to another cell — the lower bound on travel
    /// time between the two cells at unit speed.
    #[inline]
    pub fn manhattan(self, other: Cell) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// Whether `other` is exactly one grid away along a row or column.
    #[inline]
    pub fn is_adjacent(self, other: Cell) -> bool {
        self.manhattan(other) == 1
    }

    /// The neighbouring cell in direction `d`, or `None` when it would leave
    /// the `rows × cols` matrix.
    #[inline]
    pub fn step(self, d: Dir, rows: u16, cols: u16) -> Option<Cell> {
        let (dr, dc) = d.delta();
        let row = self.row.checked_add_signed(dr)?;
        let col = self.col.checked_add_signed(dc)?;
        (row < rows && col < cols).then_some(Cell { row, col })
    }
}

impl core::fmt::Display for Cell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "⟨{},{}⟩", self.row, self.col)
    }
}

/// The four axis-aligned movement directions (robots may only move along
/// rows or columns, Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Decreasing row index.
    North,
    /// Increasing row index.
    South,
    /// Decreasing column index.
    West,
    /// Increasing column index.
    East,
}

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::West, Dir::East];

    /// Row/column delta of a single step in this direction.
    #[inline]
    pub const fn delta(self) -> (i16, i16) {
        match self {
            Dir::North => (-1, 0),
            Dir::South => (1, 0),
            Dir::West => (0, -1),
            Dir::East => (0, 1),
        }
    }

    /// The opposite direction.
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
            Dir::East => Dir::West,
        }
    }

    /// Whether this direction runs along a row (latitudinal movement).
    #[inline]
    pub const fn is_latitudinal(self) -> bool {
        matches!(self, Dir::West | Dir::East)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Cell::new(3, 7);
        let b = Cell::new(10, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 7 + 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn adjacency_matches_manhattan_one() {
        let a = Cell::new(5, 5);
        assert!(a.is_adjacent(Cell::new(4, 5)));
        assert!(a.is_adjacent(Cell::new(5, 6)));
        assert!(!a.is_adjacent(Cell::new(4, 4)));
        assert!(!a.is_adjacent(a));
    }

    #[test]
    fn step_respects_bounds() {
        let origin = Cell::new(0, 0);
        assert_eq!(origin.step(Dir::North, 4, 4), None);
        assert_eq!(origin.step(Dir::West, 4, 4), None);
        assert_eq!(origin.step(Dir::South, 4, 4), Some(Cell::new(1, 0)));
        assert_eq!(origin.step(Dir::East, 4, 4), Some(Cell::new(0, 1)));
        let corner = Cell::new(3, 3);
        assert_eq!(corner.step(Dir::South, 4, 4), None);
        assert_eq!(corner.step(Dir::East, 4, 4), None);
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dr, dc) = d.delta();
            let (or, oc) = d.opposite().delta();
            assert_eq!((dr + or, dc + oc), (0, 0));
        }
    }

    #[test]
    fn latitudinal_classification() {
        assert!(Dir::East.is_latitudinal());
        assert!(Dir::West.is_latitudinal());
        assert!(!Dir::North.is_latitudinal());
        assert!(!Dir::South.is_latitudinal());
    }
}
