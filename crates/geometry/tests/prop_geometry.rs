//! Property-based tests pinning the segment geometry to the discrete
//! ground truth of Definition 3.

use carp_geometry::{
    collide_paper, earliest_collision, earliest_collision_reference, CollisionKind, NaiveStore,
    SegCollision, Segment, SegmentStore, SlopeIndexStore,
};
use proptest::prelude::*;

/// Arbitrary valid segment: random start, random slope, bounded span.
fn arb_segment() -> impl Strategy<Value = Segment> {
    (0u32..80, 0i32..30, 0usize..3, 0u32..15).prop_map(|(t0, s0, kind, span)| match kind {
        0 => Segment::wait(t0, t0 + span, s0),
        1 => Segment::travel(t0, s0, s0 + span as i32),
        _ => Segment::travel(t0, s0, s0 - span as i32),
    })
}

proptest! {
    /// The exact closed-form collision test agrees with brute-force
    /// discrete expansion on every segment pair.
    #[test]
    fn exact_matches_brute_force(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(earliest_collision(&a, &b), earliest_collision_reference(&a, &b));
    }

    /// Collision detection is symmetric in its arguments.
    #[test]
    fn collision_is_symmetric(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(earliest_collision(&a, &b), earliest_collision(&b, &a));
    }

    /// Every segment collides with itself at its start time (vertex).
    #[test]
    fn self_collision_at_start(a in arb_segment()) {
        prop_assert_eq!(
            earliest_collision(&a, &a),
            Some(SegCollision { time: a.t0, kind: CollisionKind::Vertex })
        );
    }

    /// The paper's Eq. (2) never reports a collision the exact test does
    /// not (it is strictly weaker: proper crossings only).
    #[test]
    fn paper_test_is_sound_subset(a in arb_segment(), b in arb_segment()) {
        if collide_paper(&a, &b) {
            prop_assert!(earliest_collision(&a, &b).is_some(),
                "Eq.(2) reported a phantom collision for {} vs {}", a, b);
        }
    }

    /// Both stores return the same earliest collision as a linear scan with
    /// the exact pairwise test.
    #[test]
    fn stores_match_linear_scan(
        segs in prop::collection::vec(arb_segment(), 0..60),
        q in arb_segment(),
    ) {
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        let mut expected: Option<SegCollision> = None;
        for s in &segs {
            naive.insert(*s);
            index.insert(*s);
            expected = SegCollision::min_opt(expected, earliest_collision(&q, s));
        }
        prop_assert_eq!(naive.earliest_collision(&q), expected);
        prop_assert_eq!(index.earliest_collision(&q), expected);
    }

    /// Removal really removes: after deleting every inserted segment the
    /// stores report no collisions and zero length.
    #[test]
    fn removal_restores_emptiness(segs in prop::collection::vec(arb_segment(), 1..40)) {
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        let handles: Vec<_> = segs.iter().map(|s| (naive.insert(*s), index.insert(*s), *s)).collect();
        for (nid, iid, s) in handles {
            prop_assert!(naive.remove(nid, &s));
            prop_assert!(index.remove(iid, &s));
        }
        prop_assert!(naive.is_empty());
        prop_assert!(index.is_empty());
        for s in &segs {
            prop_assert_eq!(naive.earliest_collision(s), None);
            prop_assert_eq!(index.earliest_collision(s), None);
        }
    }

    /// A reported collision time always lies within both segments' spans
    /// (for swaps, within [t0, t1) of both).
    #[test]
    fn collision_time_within_overlap(a in arb_segment(), b in arb_segment()) {
        if let Some(c) = earliest_collision(&a, &b) {
            let lo = a.t0.max(b.t0);
            let hi = a.t1.min(b.t1);
            match c.kind {
                CollisionKind::Vertex => prop_assert!((lo..=hi).contains(&c.time)),
                CollisionKind::Swap => prop_assert!(c.time >= lo && c.time < hi),
            }
        }
    }

    /// Eq. (3) gives the exact collision time whenever the exact test finds
    /// a collision between genuinely opposite-slope segments.
    #[test]
    fn eq3_matches_exact_on_opposite_slopes(a in arb_segment(), b in arb_segment()) {
        if a.slope() == 1 && b.slope() == -1 {
            if let Some(c) = earliest_collision(&a, &b) {
                // Eq. (3) assumes the crossing lies within both segments —
                // the exact test guarantees it here.
                prop_assert_eq!(carp_geometry::collision_time_paper(&a, &b), c.time);
            }
        }
    }

    /// `earliest_free_point` agrees with the brute-force definition —
    /// the first instant of the window at which a point probe reports no
    /// collision — for the trait default (exercised through a store-trait
    /// object... here simply via repeated point probes), the NaiveStore
    /// single-pass override and the SlopeIndexStore bucket override.
    #[test]
    fn earliest_free_point_matches_point_probes(
        segs in prop::collection::vec(arb_segment(), 0..60),
        t0 in 0u32..90,
        span in 0u32..20,
        s in 0i32..30,
    ) {
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        for seg in &segs {
            naive.insert(*seg);
            index.insert(*seg);
        }
        let t1 = t0 + span;
        // Ground truth: scan the window with single point probes.
        let expected = (t0..=t1)
            .find(|&t| naive.earliest_collision(&Segment::point(t, s)).is_none());
        prop_assert_eq!(naive.earliest_free_point(t0, t1, s), expected);
        prop_assert_eq!(index.earliest_free_point(t0, t1, s), expected);
        // The trait default (wait-probe stepping) must agree too; call it
        // through a minimal wrapper store that inherits the default.
        struct DefaultOnly(NaiveStore);
        impl SegmentStore for DefaultOnly {
            fn insert(&mut self, seg: Segment) -> carp_geometry::SegmentId { self.0.insert(seg) }
            fn remove(&mut self, id: carp_geometry::SegmentId, seg: &Segment) -> bool {
                self.0.remove(id, seg)
            }
            fn earliest_collision(&self, seg: &Segment) -> Option<SegCollision> {
                self.0.earliest_collision(seg)
            }
            fn len(&self) -> usize { self.0.len() }
            fn memory_bytes(&self) -> usize { self.0.memory_bytes() }
            fn snapshot(&self) -> Vec<Segment> { self.0.snapshot() }
        }
        let mut plain = DefaultOnly(NaiveStore::new());
        for seg in &segs {
            plain.insert(*seg);
        }
        prop_assert_eq!(plain.earliest_free_point(t0, t1, s), expected);
    }

    /// Snapshots of both stores agree after identical workloads.
    #[test]
    fn snapshots_agree(segs in prop::collection::vec(arb_segment(), 0..50)) {
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        for s in &segs {
            naive.insert(*s);
            index.insert(*s);
        }
        let mut a = naive.snapshot();
        let mut b = index.snapshot();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
