//! The slope-based segment index of §V-D (Algorithm 3).
//!
//! Segments are partitioned by slope into three classes. Within a class,
//! segments are grouped by the rotated coordinate of Eq. (4) — implemented
//! as the exact integer line intercept, see [`Segment::index_key`] — so two
//! *parallel* segments can only collide when they share a key (they lie on
//! the same space-time line) and their time spans overlap.
//!
//! A collision query for a segment of slope `k` therefore:
//!
//! 1. looks up only its own key bucket within class `k` (the `M_k.get(s\[0\])`
//!    of Algorithm 3) — `O(log m + m)` with `m` the bucket size, which the
//!    rotation keeps tiny because the projected time component makes keys
//!    almost unique (§V-D remarks);
//! 2. binary searches the two *unparallel* classes by time overlap and
//!    judges the survivors one by one — the `S_1^*, S_2^*` step.
//!
//! Compared to [`NaiveStore`](crate::store::NaiveStore)'s `O(2 log n + n)`,
//! this reduces the same-slope work from linear to near-constant; Fig. 22(b)
//! measures the effect end-to-end.

use crate::intersect::{earliest_collision, CollisionKind, SegCollision};
use crate::segment::Segment;
use crate::store::{SegmentId, SegmentStore};
use carp_warehouse::memory;
use carp_warehouse::types::Time;
use std::collections::{BTreeMap, HashMap};

/// One slope class: the global time-ordered set (for unparallel queries)
/// plus the key → bucket map (for parallel queries).
///
/// Buckets hold only `(t0, t1)` spans: two segments with the same key lie
/// on the same space-time line, so they collide **iff** their time spans
/// overlap, with the vertex conflict starting at the first shared instant.
/// The rotation keeps buckets tiny (§V-D remarks), so a flat vector beats
/// any tree.
#[derive(Debug, Default, Clone)]
struct SlopeClass {
    /// Ordered set over start time — the `S_k` of Algorithm 3.
    by_start: BTreeMap<(Time, SegmentId), Segment>,
    /// Rotated-coordinate map — the `M_k` of Algorithm 3.
    by_key: HashMap<i64, Vec<(Time, Time)>>,
    /// High-water mark of segment durations, bounding the overlap window.
    max_duration: Time,
}

impl SlopeClass {
    fn insert(&mut self, id: SegmentId, seg: Segment) {
        self.max_duration = self.max_duration.max(seg.duration());
        self.by_start.insert((seg.t0, id), seg);
        self.by_key
            .entry(seg.index_key())
            .or_default()
            .push((seg.t0, seg.t1));
    }

    fn remove(&mut self, id: SegmentId, seg: &Segment) -> bool {
        let removed = self.by_start.remove(&(seg.t0, id)).is_some();
        if removed {
            if let Some(bucket) = self.by_key.get_mut(&seg.index_key()) {
                if let Some(pos) = bucket.iter().position(|&s| s == (seg.t0, seg.t1)) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.by_key.remove(&seg.index_key());
                }
            }
        }
        removed
    }

    /// Remove a batch within this class. Bucket edits are grouped by key
    /// (one map lookup per distinct key instead of one per segment) and the
    /// duration high-water mark is re-tightened once at the end — the batch
    /// bookkeeping single `remove` cannot afford.
    fn remove_batch(&mut self, removals: &[(SegmentId, Segment)]) -> usize {
        let mut removed: Vec<Segment> = Vec::with_capacity(removals.len());
        for (id, seg) in removals {
            if self.by_start.remove(&(seg.t0, *id)).is_some() {
                removed.push(*seg);
            }
        }
        // Group bucket removals by rotated key.
        removed.sort_unstable_by_key(|s| s.index_key());
        let mut i = 0;
        while i < removed.len() {
            let key = removed[i].index_key();
            let mut j = i;
            if let Some(bucket) = self.by_key.get_mut(&key) {
                while j < removed.len() && removed[j].index_key() == key {
                    let span = (removed[j].t0, removed[j].t1);
                    if let Some(pos) = bucket.iter().position(|&s| s == span) {
                        bucket.swap_remove(pos);
                    }
                    j += 1;
                }
                if bucket.is_empty() {
                    self.by_key.remove(&key);
                }
            } else {
                while j < removed.len() && removed[j].index_key() == key {
                    j += 1;
                }
            }
            i = j;
        }
        if !removed.is_empty() {
            self.max_duration = self
                .by_start
                .values()
                .map(|s| s.duration())
                .max()
                .unwrap_or(0);
        }
        removed.len()
    }

    /// Earliest collision with segments *parallel* to `seg` (same class):
    /// only the same-key bucket can collide; any time overlap there is a
    /// vertex conflict starting at the first shared instant.
    fn parallel_collision(&self, seg: &Segment) -> Option<SegCollision> {
        let bucket = self.by_key.get(&seg.index_key())?;
        let mut best: Option<SegCollision> = None;
        for &(t0, t1) in bucket {
            if t0 <= seg.t1 && t1 >= seg.t0 {
                let hit = SegCollision {
                    time: seg.t0.max(t0),
                    kind: CollisionKind::Vertex,
                };
                best = SegCollision::min_opt(best, Some(hit));
            }
        }
        best
    }

    /// Earliest collision with segments in this class for a query of a
    /// *different* slope: binary search by time overlap, judge one by one.
    fn unparallel_collision(&self, seg: &Segment) -> Option<SegCollision> {
        let lo = seg.t0.saturating_sub(self.max_duration);
        let mut best: Option<SegCollision> = None;
        for (_, other) in self.by_start.range((lo, 0)..=(seg.t1, SegmentId::MAX)) {
            if other.t1 < seg.t0 {
                continue;
            }
            best = SegCollision::min_opt(best, earliest_collision(seg, other));
        }
        best
    }

    fn memory_bytes(&self) -> usize {
        let buckets: usize = self.by_key.values().map(memory::vec_bytes).sum();
        memory::btreemap_bytes(&self.by_start) + memory::hashmap_bytes(&self.by_key) + buckets
    }
}

/// Slope-indexed segment store (Algorithm 3).
#[derive(Debug, Default, Clone)]
pub struct SlopeIndexStore {
    /// Classes for slopes −1, 0, 1 at indices 0, 1, 2.
    classes: [SlopeClass; 3],
    next_id: SegmentId,
    len: usize,
}

impl SlopeIndexStore {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn class_of(slope: i8) -> usize {
        (slope + 1) as usize
    }
}

impl SegmentStore for SlopeIndexStore {
    fn insert(&mut self, seg: Segment) -> SegmentId {
        debug_assert!(seg.validate(), "invalid segment {seg}");
        let id = self.next_id;
        self.next_id += 1;
        self.classes[Self::class_of(seg.slope())].insert(id, seg);
        self.len += 1;
        id
    }

    fn remove(&mut self, id: SegmentId, seg: &Segment) -> bool {
        let removed = self.classes[Self::class_of(seg.slope())].remove(id, seg);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_batch(&mut self, removals: &[(SegmentId, Segment)]) -> usize {
        // Partition the batch by slope class, then let each class apply its
        // list with grouped bucket edits and one high-water re-tighten.
        let mut by_class: [Vec<(SegmentId, Segment)>; 3] = Default::default();
        for &(id, seg) in removals {
            by_class[Self::class_of(seg.slope())].push((id, seg));
        }
        let mut removed = 0usize;
        for (class, list) in self.classes.iter_mut().zip(by_class) {
            if !list.is_empty() {
                removed += class.remove_batch(&list);
            }
        }
        self.len -= removed;
        removed
    }

    fn earliest_collision(&self, seg: &Segment) -> Option<SegCollision> {
        let own = Self::class_of(seg.slope());
        let mut best = self.classes[own].parallel_collision(seg);
        for (i, class) in self.classes.iter().enumerate() {
            if i != own {
                best = SegCollision::min_opt(best, class.unparallel_collision(seg));
            }
        }
        best
    }

    /// Single-pass override exploiting the slope partition: the waiters
    /// that can block `(·, s)` all live in the slope-0 bucket keyed by `s`
    /// itself (their [`Segment::index_key`] is the spatial coordinate), so
    /// that class needs one bucket lookup instead of a window scan. The two
    /// moving classes are window-scanned for their single-instant
    /// crossings of coordinate `s`, then one sweep finds the first
    /// uncovered instant.
    fn earliest_free_point(&self, t0: Time, t1: Time, s: i32) -> Option<Time> {
        let mut blocked: Vec<(Time, Time)> = Vec::new();
        if let Some(bucket) = self.classes[Self::class_of(0)].by_key.get(&(s as i64)) {
            for &(b0, b1) in bucket {
                if b1 >= t0 && b0 <= t1 {
                    blocked.push((b0.max(t0), b1.min(t1)));
                }
            }
        }
        for slope in [-1i8, 1] {
            let class = &self.classes[Self::class_of(slope)];
            let lo = t0.saturating_sub(class.max_duration);
            for (_, other) in class.by_start.range((lo, 0)..=(t1, SegmentId::MAX)) {
                if other.t1 < t0 {
                    continue;
                }
                if let Some((b0, b1)) = other.occupancy_span_at(s) {
                    if b1 >= t0 && b0 <= t1 {
                        blocked.push((b0.max(t0), b1.min(t1)));
                    }
                }
            }
        }
        crate::store::earliest_uncovered(&mut blocked, t0, t1)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.memory_bytes()).sum::<usize>() + core::mem::size_of::<Self>()
    }

    fn snapshot(&self) -> Vec<Segment> {
        let mut out: Vec<Segment> = self
            .classes
            .iter()
            .flat_map(|c| c.by_start.values().copied())
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::CollisionKind;
    use crate::store::NaiveStore;

    /// The Fig. 9 scenario: a slope-0 query against a mixed population.
    #[test]
    fn fig9_slope0_query() {
        let mut idx = SlopeIndexStore::new();
        // Leftmost slope-1 segment of Fig. 9: ⟨0,8⟩ → ⟨5,13⟩.
        idx.insert(Segment {
            t0: 0,
            t1: 5,
            s0: 8,
            s1: 13,
        });
        // A parallel waiter at the same spatial coordinate 13.
        idx.insert(Segment::wait(10, 12, 13));
        // A waiter at a different coordinate — same-slope, different key.
        idx.insert(Segment::wait(11, 16, 4));
        // Query: wait at 13 over t = 11..16 (the red segment of Fig. 9).
        let q = Segment::wait(11, 16, 13);
        let c = idx
            .earliest_collision(&q)
            .expect("collides with the waiter at 13");
        assert_eq!(
            c,
            SegCollision {
                time: 11,
                kind: CollisionKind::Vertex
            }
        );
    }

    #[test]
    fn same_slope_different_key_is_filtered_out() {
        let mut idx = SlopeIndexStore::new();
        for s in 0..50 {
            idx.insert(Segment::wait(0, 100, s));
        }
        // Parallel query at a fresh coordinate: no collision.
        assert_eq!(idx.earliest_collision(&Segment::wait(0, 100, 99)), None);
        // At an occupied coordinate: collision.
        assert!(idx.earliest_collision(&Segment::wait(5, 6, 25)).is_some());
    }

    #[test]
    fn cross_slope_collisions_found() {
        let mut idx = SlopeIndexStore::new();
        idx.insert(Segment::travel(0, 0, 9)); // slope 1
        let back = Segment::travel(0, 9, 0); // slope -1
        let c = idx.earliest_collision(&back).expect("swap");
        assert_eq!(c.kind, CollisionKind::Swap);
        assert_eq!(c.time, 4);
    }

    #[test]
    fn remove_clears_buckets() {
        let mut idx = SlopeIndexStore::new();
        let seg = Segment::travel(3, 1, 6);
        let id = idx.insert(seg);
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(id, &seg));
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.earliest_collision(&Segment::travel(3, 6, 1)), None);
        // Internal bucket map must not leak empty buckets.
        assert!(idx.classes[2].by_key.is_empty());
    }

    #[test]
    fn agrees_with_naive_store_on_dense_population() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut naive = NaiveStore::new();
        let mut idx = SlopeIndexStore::new();
        let random_seg = |rng: &mut StdRng| -> Segment {
            let t0 = rng.gen_range(0..60u32);
            let s0 = rng.gen_range(0..20i32);
            match rng.gen_range(0..3) {
                0 => Segment::wait(t0, t0 + rng.gen_range(0..8u32), s0),
                1 => Segment::travel(t0, s0, rng.gen_range(s0..20)),
                _ => Segment::travel(t0, s0, rng.gen_range(0..=s0)),
            }
        };
        for _ in 0..300 {
            let seg = random_seg(&mut rng);
            naive.insert(seg);
            idx.insert(seg);
        }
        for _ in 0..300 {
            let q = random_seg(&mut rng);
            assert_eq!(
                naive.earliest_collision(&q),
                idx.earliest_collision(&q),
                "divergence on query {q}"
            );
        }
        let mut a = naive.snapshot();
        a.sort();
        assert_eq!(a, idx.snapshot());
    }

    #[test]
    fn memory_accounts_all_classes() {
        let mut idx = SlopeIndexStore::new();
        let base = idx.memory_bytes();
        idx.insert(Segment::travel(0, 0, 5));
        idx.insert(Segment::travel(0, 5, 0));
        idx.insert(Segment::wait(0, 5, 2));
        assert!(idx.memory_bytes() > base);
    }
}
