//! Exact integer space-time segment geometry for strip-based route
//! planning (§V of the ICDE'23 SRP paper).
//!
//! Within a strip, a route is one-dimensional: its trajectory is a polyline
//! of [`Segment`]s in the (time, grid-number) plane with slopes in
//! {−1, 0, 1} (Definition 6, Fig. 4). Collisions between routes become
//! segment intersections ([`intersect`]), and committed segments live in a
//! [`store::SegmentStore`] — either the naive ordered set of §V-B
//! ([`store::NaiveStore`]) or the slope-based index of §V-D
//! ([`index::SlopeIndexStore`]).
//!
//! All arithmetic is exact (`i64`); no floating point is involved anywhere,
//! including the Eq. (4) rotation, which is realized as integer line
//! intercepts (see [`Segment::index_key`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod intersect;
pub mod segment;
#[cfg(feature = "shadow-store")]
pub mod shadow;
pub mod store;

pub use engine::{EngineStats, ShardKey, StoreEngine};
pub use index::SlopeIndexStore;
pub use intersect::{
    collide_exact, collide_paper, collision_time_paper, earliest_collision,
    earliest_collision_reference, CollisionKind, SegCollision,
};
pub use segment::Segment;
#[cfg(feature = "shadow-store")]
pub use shadow::ShadowStore;
pub use store::{NaiveStore, SegmentId, SegmentStore};
