//! Sharded, concurrent segment-store engine.
//!
//! [`StoreEngine`] owns the per-strip segment stores that used to live as a
//! plain `HashMap<StripId, Box<S>>` inside the SRP planner. Shards are
//! grouped into `N` lock-striped partitions (`strip % N`, one
//! [`std::sync::RwLock`] each), so:
//!
//! * earliest-collision probes — including batched probes for a candidate
//!   route whose segments span many strips — take only read locks and can
//!   run concurrently across partitions ([`StoreEngine::collide_many`] fans
//!   out with `std::thread::scope` when more than one partition is touched
//!   and the host has more than one core);
//! * inserts and removals take only the owning partition's write lock, so
//!   independent warehouse regions never contend;
//! * route retirement is batched: [`StoreEngine::remove_batch`] groups the
//!   drained retire queue into per-shard removal lists and applies each
//!   shard's list under a single lock acquisition via
//!   [`SegmentStore::remove_batch`], instead of one map traversal per
//!   segment.
//!
//! Determinism: every operation is order-preserving — `collide_many`
//! returns results in input order regardless of how the fan-out is
//! scheduled, and shard contents do not depend on the partition count — so
//! an engine with any `N` produces bit-identical planning results to the
//! serial (`N = 1`) path. The partition count only changes who may touch
//! the structure concurrently.

use crate::intersect::SegCollision;
use crate::segment::Segment;
use crate::store::{SegmentId, SegmentStore};
use carp_warehouse::memory;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Key of one shard. This is the planner's `StripId`; the engine lives one
/// layer below the strip graph and only needs a hashable partition key.
pub type ShardKey = u32;

/// Minimum batch size before a probe fan-out spawns threads: below this the
/// per-thread setup cost dwarfs the probes themselves.
const PARALLEL_PROBE_MIN: usize = 32;

/// Minimum batch size before an [`StoreEngine::eval_many`] fan-out spawns
/// threads. Each evaluation job is a whole store-level search (an
/// intra-strip plan or a crossing scan) — orders of magnitude heavier than
/// one collision probe — so the fan-out pays for itself at much smaller
/// batches than [`PARALLEL_PROBE_MIN`].
const PARALLEL_EVAL_MIN: usize = 3;

/// Cumulative operation counters of an engine (monotone; never reset).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// `collide_many` calls.
    pub probe_batches: u64,
    /// Individual queries across all `collide_many` calls.
    pub probe_queries: u64,
    /// Partition groups across all `collide_many` calls (the fan-out width
    /// summed over batches).
    pub probe_groups: u64,
    /// `collide_many` calls that actually ran on scoped threads.
    pub parallel_batches: u64,
    /// `remove_batch` calls.
    pub retire_batches: u64,
    /// Segments removed across all `remove_batch` calls.
    pub retired_segments: u64,
    /// `eval_many` calls (batched edge-cost evaluations).
    pub eval_batches: u64,
    /// Individual jobs across all `eval_many` calls.
    pub eval_jobs: u64,
    /// `eval_many` calls that actually ran on scoped threads.
    pub parallel_eval_batches: u64,
}

impl EngineStats {
    /// Mean partition fan-out per probe batch (1.0 = fully serial).
    pub fn probe_parallelism(&self) -> f64 {
        if self.probe_batches == 0 {
            0.0
        } else {
            self.probe_groups as f64 / self.probe_batches as f64
        }
    }

    /// Share of probe batches that actually fanned out on scoped threads.
    /// 0.0 means every batch took the serial path (single-core host, one
    /// partition, or batches below the fan-out threshold).
    pub fn parallel_share(&self) -> f64 {
        if self.probe_batches == 0 {
            0.0
        } else {
            self.parallel_batches as f64 / self.probe_batches as f64
        }
    }

    /// Mean segments retired per removal batch.
    pub fn mean_retire_batch(&self) -> f64 {
        if self.retire_batches == 0 {
            0.0
        } else {
            self.retired_segments as f64 / self.retire_batches as f64
        }
    }

    /// Mean jobs per `eval_many` batch (the frontier width the search
    /// actually gathers).
    pub fn mean_eval_batch(&self) -> f64 {
        if self.eval_batches == 0 {
            0.0
        } else {
            self.eval_jobs as f64 / self.eval_batches as f64
        }
    }

    /// Share of `eval_many` batches that actually fanned out on scoped
    /// threads.
    pub fn eval_parallel_share(&self) -> f64 {
        if self.eval_batches == 0 {
            0.0
        } else {
            self.parallel_eval_batches as f64 / self.eval_batches as f64
        }
    }
}

/// One lock stripe: the shards whose key hashes onto this partition.
#[derive(Debug, Default)]
struct Partition<S> {
    /// Shards are boxed and allocated lazily: most strips carry no traffic
    /// at any given moment, and inline store shells in the map slots would
    /// dominate the engine's memory footprint.
    shards: HashMap<ShardKey, Box<S>>,
}

/// The sharded, concurrent segment-store engine (see module docs).
#[derive(Debug)]
pub struct StoreEngine<S: SegmentStore> {
    partitions: Vec<RwLock<Partition<S>>>,
    /// Shared empty store handed out for shards with no segments.
    empty: S,
    /// Worker threads available for probe fan-out (cached at construction).
    threads: usize,
    probe_batches: AtomicU64,
    probe_queries: AtomicU64,
    probe_groups: AtomicU64,
    parallel_batches: AtomicU64,
    retire_batches: AtomicU64,
    retired_segments: AtomicU64,
    eval_batches: AtomicU64,
    eval_jobs: AtomicU64,
    parallel_eval_batches: AtomicU64,
}

impl<S: SegmentStore + Default> StoreEngine<S> {
    /// Create an engine with `partitions` lock stripes (clamped to ≥ 1),
    /// using every core the host advertises for fan-outs.
    pub fn new(partitions: usize) -> Self {
        Self::with_parallelism(
            partitions,
            std::thread::available_parallelism().map_or(1, |p| p.get()),
        )
    }

    /// Create an engine with an explicit worker-thread budget instead of
    /// the detected core count. `threads <= 1` (clamped to ≥ 1) forces
    /// every fan-out onto the serial path; `threads > 1` enables the
    /// scoped-thread path even on hosts that report a single core —
    /// results are identical either way (the fan-out is order-preserving),
    /// so tests use this to pin both paths deterministically.
    pub fn with_parallelism(partitions: usize, threads: usize) -> Self {
        let n = partitions.max(1);
        StoreEngine {
            partitions: (0..n).map(|_| RwLock::new(Partition::default())).collect(),
            empty: S::default(),
            threads: threads.max(1),
            probe_batches: AtomicU64::new(0),
            probe_queries: AtomicU64::new(0),
            probe_groups: AtomicU64::new(0),
            parallel_batches: AtomicU64::new(0),
            retire_batches: AtomicU64::new(0),
            retired_segments: AtomicU64::new(0),
            eval_batches: AtomicU64::new(0),
            eval_jobs: AtomicU64::new(0),
            parallel_eval_batches: AtomicU64::new(0),
        }
    }

    /// Number of lock-striped partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Worker threads available for fan-outs (fixed at construction).
    pub fn threads(&self) -> usize {
        self.threads
    }

    #[inline]
    fn partition_of(&self, key: ShardKey) -> usize {
        key as usize % self.partitions.len()
    }

    #[inline]
    fn read(&self, idx: usize) -> std::sync::RwLockReadGuard<'_, Partition<S>> {
        self.partitions[idx].read().expect("engine lock poisoned")
    }

    #[inline]
    fn write(&self, idx: usize) -> std::sync::RwLockWriteGuard<'_, Partition<S>> {
        self.partitions[idx].write().expect("engine lock poisoned")
    }

    /// Insert a segment into `key`'s shard (allocated on first use) under
    /// the owning partition's write lock. Returns the removal handle.
    pub fn insert(&self, key: ShardKey, seg: Segment) -> SegmentId {
        self.write(self.partition_of(key))
            .shards
            .entry(key)
            .or_default()
            .insert(seg)
    }

    /// Remove one segment. Empty shards are dropped. Prefer
    /// [`StoreEngine::remove_batch`] for retirement.
    pub fn remove(&self, key: ShardKey, id: SegmentId, seg: &Segment) -> bool {
        let mut part = self.write(self.partition_of(key));
        let Some(store) = part.shards.get_mut(&key) else {
            return false;
        };
        let removed = store.remove(id, seg);
        if removed && store.is_empty() {
            part.shards.remove(&key);
        }
        removed
    }

    /// Apply a whole retirement batch: removals are grouped per shard and
    /// each shard's list lands in one [`SegmentStore::remove_batch`] call
    /// under a single write-lock acquisition of the owning partition.
    /// Returns how many segments were actually removed.
    pub fn remove_batch(&self, removals: &[(ShardKey, SegmentId, Segment)]) -> usize {
        if removals.is_empty() {
            return 0;
        }
        // Group by partition, then by shard within the partition.
        let n = self.partitions.len();
        let mut by_partition: Vec<HashMap<ShardKey, Vec<(SegmentId, Segment)>>> =
            (0..n).map(|_| HashMap::new()).collect();
        for &(key, id, seg) in removals {
            by_partition[self.partition_of(key)]
                .entry(key)
                .or_default()
                .push((id, seg));
        }
        let mut removed = 0usize;
        for (idx, groups) in by_partition.into_iter().enumerate() {
            if groups.is_empty() {
                continue;
            }
            let mut part = self.write(idx);
            for (key, list) in groups {
                if let Some(store) = part.shards.get_mut(&key) {
                    removed += store.remove_batch(&list);
                    if store.is_empty() {
                        part.shards.remove(&key);
                    }
                }
            }
        }
        self.retire_batches.fetch_add(1, Ordering::Relaxed);
        self.retired_segments
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Earliest collision of one candidate segment against `key`'s shard.
    pub fn earliest_collision(&self, key: ShardKey, seg: &Segment) -> Option<SegCollision> {
        self.probe_queries.fetch_add(1, Ordering::Relaxed);
        self.read(self.partition_of(key))
            .shards
            .get(&key)
            .and_then(|s| s.earliest_collision(seg))
    }

    /// Earliest collisions of a batch of candidate segments spanning many
    /// shards, in input order. Queries are grouped per partition; when more
    /// than one partition is touched, the batch is large enough and the
    /// host has spare cores, the groups run concurrently on scoped threads
    /// (each under its own read lock). Results are assembled by original
    /// index, so the answer is independent of scheduling.
    pub fn collide_many(&self, queries: &[(ShardKey, Segment)]) -> Vec<Option<SegCollision>> {
        self.probe_batches.fetch_add(1, Ordering::Relaxed);
        self.probe_queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let n = self.partitions.len();
        // Group query indices by partition.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (key, _)) in queries.iter().enumerate() {
            groups[self.partition_of(*key)].push(i);
        }
        let touched: Vec<usize> = (0..n).filter(|&p| !groups[p].is_empty()).collect();
        self.probe_groups
            .fetch_add(touched.len() as u64, Ordering::Relaxed);

        let mut results: Vec<Option<SegCollision>> = vec![None; queries.len()];
        let run_group =
            |part: &Partition<S>, idxs: &[usize]| -> Vec<(usize, Option<SegCollision>)> {
                // Within a partition, group consecutive same-shard queries so
                // each shard answers through one `collide_many` call.
                let mut out = Vec::with_capacity(idxs.len());
                let mut i = 0;
                while i < idxs.len() {
                    let key = queries[idxs[i]].0;
                    let mut j = i;
                    while j < idxs.len() && queries[idxs[j]].0 == key {
                        j += 1;
                    }
                    let batch: Vec<Segment> = idxs[i..j].iter().map(|&q| queries[q].1).collect();
                    let answers = part.shards.get(&key).map_or_else(
                        || self.empty.collide_many(&batch),
                        |s| s.collide_many(&batch),
                    );
                    out.extend(idxs[i..j].iter().copied().zip(answers));
                    i = j;
                }
                out
            };

        if touched.len() > 1 && self.threads > 1 && queries.len() >= PARALLEL_PROBE_MIN {
            self.parallel_batches.fetch_add(1, Ordering::Relaxed);
            let answers: Vec<Vec<(usize, Option<SegCollision>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = touched
                    .iter()
                    .map(|&p| {
                        let idxs = &groups[p];
                        scope.spawn(move || run_group(&self.read(p), idxs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probe worker panicked"))
                    .collect()
            });
            for (i, r) in answers.into_iter().flatten() {
                results[i] = r;
            }
        } else {
            for &p in &touched {
                for (i, r) in run_group(&self.read(p), &groups[p]) {
                    results[i] = r;
                }
            }
        }
        results
    }

    /// Evaluate a batch of independent per-shard jobs, in input order: each
    /// job `(key, q)` is answered by `f(store, q)` against `key`'s store
    /// (the shared empty stand-in when the shard was never touched). Jobs
    /// are grouped per partition; when more than one partition is touched,
    /// the engine has a multi-thread budget and the batch clears
    /// [`PARALLEL_EVAL_MIN`], the groups run concurrently on scoped threads
    /// — each under its own read lock, never more than one lock per worker,
    /// so `f` must not call back into the engine. Results are assembled by
    /// original index, so the answer is independent of scheduling.
    ///
    /// This is the generic sibling of [`StoreEngine::collide_many`] for
    /// callers whose per-shard work is a whole search (an intra-strip plan,
    /// a crossing scan) rather than a single collision probe.
    pub fn eval_many<Q, R>(&self, jobs: &[(ShardKey, Q)], f: impl Fn(&S, &Q) -> R + Sync) -> Vec<R>
    where
        Q: Sync,
        R: Send,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        self.eval_batches.fetch_add(1, Ordering::Relaxed);
        self.eval_jobs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let n = self.partitions.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (key, _)) in jobs.iter().enumerate() {
            groups[self.partition_of(*key)].push(i);
        }
        let touched: Vec<usize> = (0..n).filter(|&p| !groups[p].is_empty()).collect();

        let run_group = |part: &Partition<S>, idxs: &[usize]| -> Vec<(usize, R)> {
            idxs.iter()
                .map(|&i| {
                    let (key, q) = &jobs[i];
                    let store = part.shards.get(key).map_or(&self.empty, |b| &**b);
                    (i, f(store, q))
                })
                .collect()
        };

        let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
        if touched.len() > 1 && self.threads > 1 && jobs.len() >= PARALLEL_EVAL_MIN {
            self.parallel_eval_batches.fetch_add(1, Ordering::Relaxed);
            let answers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = touched
                    .iter()
                    .map(|&p| {
                        let idxs = &groups[p];
                        scope.spawn(move || run_group(&self.read(p), idxs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("eval worker panicked"))
                    .collect()
            });
            for (i, r) in answers.into_iter().flatten() {
                slots[i] = Some(r);
            }
        } else {
            for &p in &touched {
                for (i, r) in run_group(&self.read(p), &groups[p]) {
                    slots[i] = Some(r);
                }
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every job answered exactly once"))
            .collect()
    }

    /// Run a closure against `key`'s store under the partition's read lock
    /// (an empty stand-in when the shard was never touched). This is how
    /// the intra-strip planner borrows a store for the duration of one leg.
    pub fn with_shard<R>(&self, key: ShardKey, f: impl FnOnce(&S) -> R) -> R {
        let part = self.read(self.partition_of(key));
        f(part.shards.get(&key).map_or(&self.empty, |b| &**b))
    }

    /// Number of segments in `key`'s shard.
    pub fn shard_len(&self, key: ShardKey) -> usize {
        self.with_shard(key, |s| s.len())
    }

    /// Snapshot of `key`'s shard, for tests and debugging.
    pub fn snapshot(&self, key: ShardKey) -> Vec<Segment> {
        self.with_shard(key, |s| s.snapshot())
    }

    /// Total segments across all shards.
    pub fn total_segments(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.read()
                    .expect("engine lock poisoned")
                    .shards
                    .values()
                    .map(|s| s.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Number of live (non-empty) shards.
    pub fn active_shards(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.read().expect("engine lock poisoned").shards.len())
            .sum()
    }

    /// Estimated heap bytes of the engine (MC metric): shard stores plus
    /// the partition maps.
    pub fn memory_bytes(&self) -> usize {
        let shards: usize = self
            .partitions
            .iter()
            .map(|p| {
                let part = p.read().expect("engine lock poisoned");
                part.shards
                    .values()
                    .map(|s| s.memory_bytes() + core::mem::size_of::<S>())
                    .sum::<usize>()
                    + memory::hashmap_bytes(&part.shards)
            })
            .sum();
        shards + self.partitions.len() * core::mem::size_of::<RwLock<Partition<S>>>()
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            probe_batches: self.probe_batches.load(Ordering::Relaxed),
            probe_queries: self.probe_queries.load(Ordering::Relaxed),
            probe_groups: self.probe_groups.load(Ordering::Relaxed),
            parallel_batches: self.parallel_batches.load(Ordering::Relaxed),
            retire_batches: self.retire_batches.load(Ordering::Relaxed),
            retired_segments: self.retired_segments.load(Ordering::Relaxed),
            eval_batches: self.eval_batches.load(Ordering::Relaxed),
            eval_jobs: self.eval_jobs.load(Ordering::Relaxed),
            parallel_eval_batches: self.parallel_eval_batches.load(Ordering::Relaxed),
        }
    }
}

impl<S: SegmentStore + Clone> Clone for StoreEngine<S> {
    fn clone(&self) -> Self {
        StoreEngine {
            partitions: self
                .partitions
                .iter()
                .map(|p| {
                    RwLock::new(Partition {
                        shards: p.read().expect("engine lock poisoned").shards.clone(),
                    })
                })
                .collect(),
            empty: self.empty.clone(),
            threads: self.threads,
            probe_batches: AtomicU64::new(self.probe_batches.load(Ordering::Relaxed)),
            probe_queries: AtomicU64::new(self.probe_queries.load(Ordering::Relaxed)),
            probe_groups: AtomicU64::new(self.probe_groups.load(Ordering::Relaxed)),
            parallel_batches: AtomicU64::new(self.parallel_batches.load(Ordering::Relaxed)),
            retire_batches: AtomicU64::new(self.retire_batches.load(Ordering::Relaxed)),
            retired_segments: AtomicU64::new(self.retired_segments.load(Ordering::Relaxed)),
            eval_batches: AtomicU64::new(self.eval_batches.load(Ordering::Relaxed)),
            eval_jobs: AtomicU64::new(self.eval_jobs.load(Ordering::Relaxed)),
            parallel_eval_batches: AtomicU64::new(
                self.parallel_eval_batches.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SlopeIndexStore;
    use crate::store::NaiveStore;

    fn seg(t0: u32, s: i32) -> Segment {
        Segment::wait(t0, t0 + 2, s)
    }

    #[test]
    fn insert_probe_remove_roundtrip_across_partitions() {
        for parts in [1usize, 2, 4, 8] {
            let engine: StoreEngine<SlopeIndexStore> = StoreEngine::new(parts);
            let mut handles = Vec::new();
            for key in 0..32u32 {
                handles.push((
                    key,
                    engine.insert(key, seg(0, key as i32)),
                    seg(0, key as i32),
                ));
            }
            assert_eq!(engine.total_segments(), 32);
            assert_eq!(engine.active_shards(), 32);
            for key in 0..32u32 {
                assert!(engine
                    .earliest_collision(key, &seg(1, key as i32))
                    .is_some());
                assert!(engine
                    .earliest_collision(key, &seg(10, key as i32))
                    .is_none());
            }
            let removals: Vec<_> = handles.iter().map(|&(k, id, s)| (k, id, s)).collect();
            assert_eq!(engine.remove_batch(&removals), 32);
            assert_eq!(engine.total_segments(), 0);
            assert_eq!(engine.active_shards(), 0, "empty shards must be dropped");
        }
    }

    #[test]
    fn collide_many_matches_serial_probes_for_every_partition_count() {
        let reference: StoreEngine<NaiveStore> = StoreEngine::new(1);
        let mut population = Vec::new();
        let mut state = 0xdead_beefu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let key = (rng() % 64) as u32;
            let t0 = (rng() % 50) as u32;
            let s0 = (rng() % 16) as i32;
            population.push((key, Segment::wait(t0, t0 + (rng() % 6) as u32, s0)));
        }
        for &(key, s) in &population {
            reference.insert(key, s);
        }
        let queries: Vec<(ShardKey, Segment)> = (0..300)
            .map(|_| {
                let key = (rng() % 64) as u32;
                let t0 = (rng() % 50) as u32;
                (key, Segment::travel(t0, 0, 15))
            })
            .collect();
        let expected: Vec<_> = queries
            .iter()
            .map(|(k, q)| reference.earliest_collision(*k, q))
            .collect();
        for parts in [1usize, 2, 4, 8] {
            let engine: StoreEngine<NaiveStore> = StoreEngine::new(parts);
            for &(key, s) in &population {
                engine.insert(key, s);
            }
            assert_eq!(
                engine.collide_many(&queries),
                expected,
                "partition count {parts} diverged from the serial reference"
            );
        }
    }

    #[test]
    fn single_remove_drops_empty_shards_and_refuses_unknown() {
        let engine: StoreEngine<SlopeIndexStore> = StoreEngine::new(4);
        let s = seg(0, 3);
        let id = engine.insert(7, s);
        assert!(!engine.remove(9, id, &s), "wrong shard refused");
        assert!(engine.remove(7, id, &s));
        assert!(!engine.remove(7, id, &s), "double remove refused");
        assert_eq!(engine.active_shards(), 0);
    }

    #[test]
    fn stats_track_probe_and_retire_batches() {
        let engine: StoreEngine<NaiveStore> = StoreEngine::new(4);
        let mut removals = Vec::new();
        for key in 0..8u32 {
            let s = seg(0, 0);
            removals.push((key, engine.insert(key, s), s));
        }
        let queries: Vec<(ShardKey, Segment)> = (0..8u32).map(|k| (k, seg(1, 0))).collect();
        let answers = engine.collide_many(&queries);
        assert!(answers.iter().all(|a| a.is_some()));
        engine.remove_batch(&removals);
        let stats = engine.stats();
        assert_eq!(stats.probe_batches, 1);
        assert_eq!(stats.probe_queries, 8);
        assert_eq!(
            stats.probe_groups, 4,
            "8 keys over 4 partitions touch all 4"
        );
        assert_eq!(stats.retire_batches, 1);
        assert_eq!(stats.retired_segments, 8);
        assert!((stats.probe_parallelism() - 4.0).abs() < 1e-9);
        assert!((stats.mean_retire_batch() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn clone_preserves_contents_and_counters() {
        let engine: StoreEngine<SlopeIndexStore> = StoreEngine::new(2);
        engine.insert(1, seg(0, 0));
        engine.insert(2, seg(5, 1));
        let _ = engine.collide_many(&[(1, seg(1, 0)), (2, seg(6, 1))]);
        let clone = engine.clone();
        assert_eq!(clone.total_segments(), 2);
        assert_eq!(clone.snapshot(1), engine.snapshot(1));
        assert_eq!(clone.stats(), engine.stats());
    }

    #[test]
    fn eval_many_preserves_input_order_on_both_paths() {
        // Same population, one engine forced serial (threads = 1) and one
        // forced onto the scoped-thread path (threads = 4, which works even
        // on a single-core host): answers must be identical and in input
        // order either way.
        let build = |threads: usize| {
            let engine: StoreEngine<SlopeIndexStore> = StoreEngine::with_parallelism(8, threads);
            for key in 0..24u32 {
                engine.insert(key, seg(key, key as i32));
            }
            engine
        };
        let serial = build(1);
        let parallel = build(4);
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        let jobs: Vec<(ShardKey, u32)> = (0..24u32).rev().map(|k| (k, k)).collect();
        let f = |store: &SlopeIndexStore, k: &u32| (*k, store.len());
        let a = serial.eval_many(&jobs, f);
        let b = parallel.eval_many(&jobs, f);
        assert_eq!(a, b);
        for (i, (k, len)) in a.iter().enumerate() {
            assert_eq!(*k, jobs[i].1, "result {i} out of input order");
            assert_eq!(*len, 1, "shard {k} holds one segment");
        }
        assert_eq!(serial.stats().parallel_eval_batches, 0);
        assert_eq!(parallel.stats().parallel_eval_batches, 1);
        assert_eq!(parallel.stats().eval_jobs, 24);
        assert!((parallel.stats().mean_eval_batch() - 24.0).abs() < 1e-9);
        assert!((parallel.stats().eval_parallel_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eval_many_hands_empty_store_for_untouched_shards() {
        let engine: StoreEngine<NaiveStore> = StoreEngine::with_parallelism(4, 4);
        engine.insert(0, seg(0, 0));
        let jobs: Vec<(ShardKey, ())> = vec![(0, ()), (99, ()), (7, ())];
        let lens = engine.eval_many(&jobs, |store, _| store.len());
        assert_eq!(lens, vec![1, 0, 0]);
        // Empty input returns immediately and is not counted as a batch.
        assert!(engine
            .eval_many::<(), usize>(&[], |s, _| s.len())
            .is_empty());
        let stats = engine.stats();
        assert_eq!(stats.eval_batches, 1);
        assert_eq!(stats.eval_jobs, 3);
    }

    #[test]
    fn memory_shrinks_after_batch_retirement() {
        let engine: StoreEngine<SlopeIndexStore> = StoreEngine::new(4);
        let empty = engine.memory_bytes();
        let mut removals = Vec::new();
        for key in 0..16u32 {
            let s = seg(key, key as i32);
            removals.push((key, engine.insert(key, s), s));
        }
        let peak = engine.memory_bytes();
        assert!(peak > empty);
        engine.remove_batch(&removals);
        // Shard maps keep their capacity, so the floor is not exactly the
        // empty baseline — but dropping the stores must reclaim the bulk.
        assert!(engine.memory_bytes() < peak);
    }
}
