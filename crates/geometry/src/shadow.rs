//! Differential shadow store (feature `shadow-store`).
//!
//! [`ShadowStore`] runs the slope-based index of §V-D and the naive
//! ordered-set store of §V-B-2 side by side behind one [`SegmentStore`]
//! facade and asserts that both return **identical collision answers for
//! every query**. Plugged into the SRP planner
//! (`SrpPlanner::<ShadowStore>::with_store`), it turns every planning run
//! into a differential test of the slope index against the reference store
//! — the audit layer's tool for localizing collision regressions to the
//! index (store divergence) versus the planner (both stores agree, the
//! route is still bad).
//!
//! Asserting equality of full [`SegCollision`] values is sound because a
//! collision answer is only `(time, kind)`: both stores report the earliest
//! collision under the same half-step `order_key` ordering, so ties between
//! different stored segments yield equal answers.

use crate::index::SlopeIndexStore;
use crate::intersect::SegCollision;
use crate::segment::Segment;
use crate::store::{NaiveStore, SegmentId, SegmentStore};
use carp_warehouse::types::Time;
use std::collections::HashMap;

/// A [`SegmentStore`] that mirrors every operation into both a
/// [`SlopeIndexStore`] and a [`NaiveStore`] and panics on any divergence.
///
/// Handles returned by the two inner stores are private to each; the shadow
/// store issues its own ids and keeps the mapping.
#[derive(Debug, Default, Clone)]
pub struct ShadowStore {
    fast: SlopeIndexStore,
    naive: NaiveStore,
    handles: HashMap<SegmentId, (SegmentId, SegmentId)>,
    next: SegmentId,
}

impl ShadowStore {
    /// Create an empty shadow store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slope-indexed inner store.
    pub fn fast(&self) -> &SlopeIndexStore {
        &self.fast
    }

    /// The naive ordered-set inner store.
    pub fn naive(&self) -> &NaiveStore {
        &self.naive
    }
}

impl SegmentStore for ShadowStore {
    fn insert(&mut self, seg: Segment) -> SegmentId {
        let f = self.fast.insert(seg);
        let n = self.naive.insert(seg);
        let id = self.next;
        self.next += 1;
        self.handles.insert(id, (f, n));
        id
    }

    fn remove(&mut self, id: SegmentId, seg: &Segment) -> bool {
        let Some((f, n)) = self.handles.remove(&id) else {
            return false;
        };
        let rf = self.fast.remove(f, seg);
        let rn = self.naive.remove(n, seg);
        assert_eq!(
            rf, rn,
            "shadow-store divergence removing {seg}: slope-index {rf}, naive {rn}"
        );
        rf
    }

    fn remove_batch(&mut self, removals: &[(SegmentId, Segment)]) -> usize {
        let mut fast_list = Vec::with_capacity(removals.len());
        let mut naive_list = Vec::with_capacity(removals.len());
        for (id, seg) in removals {
            if let Some((f, n)) = self.handles.remove(id) {
                fast_list.push((f, *seg));
                naive_list.push((n, *seg));
            }
        }
        let rf = self.fast.remove_batch(&fast_list);
        let rn = self.naive.remove_batch(&naive_list);
        assert_eq!(
            rf, rn,
            "shadow-store divergence in remove_batch: slope-index removed {rf}, naive removed {rn}"
        );
        rf
    }

    fn earliest_collision(&self, seg: &Segment) -> Option<SegCollision> {
        let a = self.fast.earliest_collision(seg);
        let b = self.naive.earliest_collision(seg);
        assert_eq!(
            a, b,
            "shadow-store divergence querying {seg}: slope-index {a:?}, naive {b:?}"
        );
        a
    }

    fn collide_many(&self, queries: &[Segment]) -> Vec<Option<SegCollision>> {
        let a = self.fast.collide_many(queries);
        let b = self.naive.collide_many(queries);
        for ((q, ra), rb) in queries.iter().zip(&a).zip(&b) {
            assert_eq!(
                ra, rb,
                "shadow-store divergence in collide_many on {q}: slope-index {ra:?}, naive {rb:?}"
            );
        }
        a
    }

    fn earliest_free_point(&self, t0: Time, t1: Time, s: i32) -> Option<Time> {
        let a = self.fast.earliest_free_point(t0, t1, s);
        let b = self.naive.earliest_free_point(t0, t1, s);
        assert_eq!(
            a, b,
            "shadow-store divergence in earliest_free_point([{t0},{t1}], {s}): \
             slope-index {a:?}, naive {b:?}"
        );
        a
    }

    fn len(&self) -> usize {
        let a = self.fast.len();
        let b = self.naive.len();
        assert_eq!(
            a, b,
            "shadow-store divergence in len: slope-index {a}, naive {b}"
        );
        a
    }

    fn memory_bytes(&self) -> usize {
        self.fast.memory_bytes()
            + self.naive.memory_bytes()
            + carp_warehouse::memory::hashmap_bytes(&self.handles)
    }

    fn snapshot(&self) -> Vec<Segment> {
        let mut a = self.fast.snapshot();
        let mut b = self.naive.snapshot();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shadow-store divergence in snapshot");
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::CollisionKind;

    #[test]
    fn mirrors_insert_query_remove() {
        let mut store = ShadowStore::new();
        let seg = Segment::travel(0, 0, 5);
        let id = store.insert(seg);
        assert_eq!(store.len(), 1);
        let c = store
            .earliest_collision(&Segment::travel(0, 5, 0))
            .expect("swap");
        assert_eq!(c.kind, CollisionKind::Swap);
        assert!(store.remove(id, &seg));
        assert!(store.is_empty());
        assert!(!store.remove(id, &seg), "unknown handle refused");
    }

    #[test]
    fn agrees_over_a_random_workload() {
        // Deterministic mixed workload: inserts, queries, removals.
        let mut store = ShadowStore::new();
        let mut live: Vec<(SegmentId, Segment)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..400 {
            let t0 = (rng() % 64) as u32;
            let len = (rng() % 9) as u32;
            let s0 = (rng() % 24) as i32;
            let seg = match rng() % 3 {
                0 => Segment::wait(t0, t0 + len, s0),
                1 => Segment::travel(t0, s0, s0 + len as i32),
                _ => Segment::travel(t0, s0 + len as i32, s0),
            };
            match rng() % 4 {
                // Queries exercise the divergence assertion on every call.
                0 => {
                    let _ = store.earliest_collision(&seg);
                }
                1 if !live.is_empty() => {
                    let (id, old) = live.swap_remove((rng() % live.len() as u64) as usize);
                    assert!(store.remove(id, &old));
                }
                _ => {
                    let id = store.insert(seg);
                    live.push((id, seg));
                }
            }
            if step % 50 == 0 {
                let _ = store.snapshot();
            }
        }
        assert_eq!(store.len(), live.len());
    }
}
