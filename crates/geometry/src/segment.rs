//! Space-time segments (Definition 6): the 2-D (1-D space + 1-D time)
//! representation of routes within a strip.
//!
//! A segment `φ = ⟨s, f⟩` runs from `(t0, s0)` to `(t1, s1)` where `t` is
//! time and `s` the one-dimensional grid number along the strip direction.
//! Robots move at unit speed, so a segment's slope `Δs/Δt` is always `1`
//! (moving forward along the strip), `-1` (moving backward) or `0`
//! (waiting) — Fig. 4.

use carp_warehouse::types::Time;

/// A space-time segment within a strip.
///
/// Invariants (checked by [`Segment::validate`] and upheld by the
/// constructors):
/// * `t0 <= t1`;
/// * `|s1 - s0| == t1 - t0` (moving) or `s1 == s0` (waiting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Segment {
    /// Start time `s\[0\]` in the paper's notation.
    pub t0: Time,
    /// Finish time `f\[0\]`.
    pub t1: Time,
    /// Start grid number `s\[1\]`.
    pub s0: i32,
    /// Finish grid number `f\[1\]`.
    pub s1: i32,
}

impl Segment {
    /// A waiting segment: stay at `pos` from `t0` to `t1` (slope 0, Fig. 4's
    /// horizontal red segment). `t0 == t1` yields a point.
    pub fn wait(t0: Time, t1: Time, pos: i32) -> Self {
        assert!(t0 <= t1);
        Segment {
            t0,
            t1,
            s0: pos,
            s1: pos,
        }
    }

    /// A moving segment from grid `s0` at `t0` to grid `s1`, arriving at
    /// `t0 + |s1 - s0|` (slope ±1).
    pub fn travel(t0: Time, s0: i32, s1: i32) -> Self {
        let d = s0.abs_diff(s1);
        Segment {
            t0,
            t1: t0 + d,
            s0,
            s1,
        }
    }

    /// A single point in space-time (a route entering a strip and leaving
    /// right away — footnote 1 of the paper).
    pub fn point(t: Time, pos: i32) -> Self {
        Segment {
            t0: t,
            t1: t,
            s0: pos,
            s1: pos,
        }
    }

    /// Slope of the segment: `1`, `-1` or `0`.
    #[inline]
    pub fn slope(&self) -> i8 {
        match self.s1.cmp(&self.s0) {
            core::cmp::Ordering::Greater => 1,
            core::cmp::Ordering::Less => -1,
            core::cmp::Ordering::Equal => 0,
        }
    }

    /// Duration `t1 - t0` in time steps.
    #[inline]
    pub fn duration(&self) -> Time {
        self.t1 - self.t0
    }

    /// Grid number occupied at absolute time `t`; `None` outside `[t0, t1]`.
    #[inline]
    pub fn pos_at(&self, t: Time) -> Option<i32> {
        if t < self.t0 || t > self.t1 {
            return None;
        }
        Some(self.s0 + self.slope() as i32 * (t - self.t0) as i32)
    }

    /// Whether the segment's time span `[t0, t1]` intersects `[lo, hi]`.
    #[inline]
    pub fn time_overlaps(&self, lo: Time, hi: Time) -> bool {
        self.t0 <= hi && self.t1 >= lo
    }

    /// The slope-index key of Algorithm 3 / Eq. (4), in exact integer form.
    ///
    /// The paper rotates slope-±1 segments by ∓π/4 so parallel segments on
    /// the same line share a rotated coordinate `s'\[0\]` (e.g. `4√2` in
    /// Fig. 9). The rotated coordinate equals the line's intercept scaled by
    /// `√2/2`, so we index by the exact integer intercepts instead:
    ///
    /// * slope `1` (line `s = t + b`): key `b = s0 - t0`;
    /// * slope `-1` (line `s = -t + c`): key `c = s0 + t0`;
    /// * slope `0`: key is the spatial coordinate `s0` itself.
    #[inline]
    pub fn index_key(&self) -> i64 {
        match self.slope() {
            1 => self.s0 as i64 - self.t0 as i64,
            -1 => self.s0 as i64 + self.t0 as i64,
            _ => self.s0 as i64,
        }
    }

    /// Check the segment invariants.
    pub fn validate(&self) -> bool {
        self.t0 <= self.t1 && (self.s0 == self.s1 || self.s0.abs_diff(self.s1) == self.t1 - self.t0)
    }

    /// Minimum of the two grid numbers.
    #[inline]
    pub fn s_min(&self) -> i32 {
        self.s0.min(self.s1)
    }

    /// Maximum of the two grid numbers.
    #[inline]
    pub fn s_max(&self) -> i32 {
        self.s0.max(self.s1)
    }

    /// Enumerate the discrete `(time, grid)` occupancy of the segment —
    /// used by ground-truth tests, not by the fast path.
    pub fn occupancy(&self) -> impl Iterator<Item = (Time, i32)> + '_ {
        (self.t0..=self.t1).map(move |t| (t, self.pos_at(t).expect("t in range")))
    }

    /// Closed time interval during which the segment occupies grid number
    /// `s`, or `None` when it never does. A waiting segment occupies its
    /// cell for its whole span; a moving segment passes through each cell
    /// of its range at exactly one instant.
    #[inline]
    pub fn occupancy_span_at(&self, s: i32) -> Option<(Time, Time)> {
        if s < self.s_min() || s > self.s_max() {
            return None;
        }
        if self.s0 == self.s1 {
            Some((self.t0, self.t1))
        } else {
            let t = self.t0 + s.abs_diff(self.s0);
            Some((t, t))
        }
    }
}

impl core::fmt::Display for Segment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "⟨({},{}) → ({},{})⟩", self.t0, self.s0, self.t1, self.s1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_valid_segments() {
        assert!(Segment::wait(3, 7, 5).validate());
        assert!(Segment::travel(0, 2, 9).validate());
        assert!(Segment::travel(0, 9, 2).validate());
        assert!(Segment::point(4, 4).validate());
    }

    #[test]
    fn slopes() {
        assert_eq!(Segment::travel(0, 2, 9).slope(), 1);
        assert_eq!(Segment::travel(0, 9, 2).slope(), -1);
        assert_eq!(Segment::wait(0, 5, 3).slope(), 0);
        assert_eq!(Segment::point(0, 3).slope(), 0);
    }

    #[test]
    fn pos_at_interpolates() {
        let fwd = Segment::travel(10, 0, 5);
        assert_eq!(fwd.pos_at(10), Some(0));
        assert_eq!(fwd.pos_at(13), Some(3));
        assert_eq!(fwd.pos_at(15), Some(5));
        assert_eq!(fwd.pos_at(16), None);
        assert_eq!(fwd.pos_at(9), None);
        let bwd = Segment::travel(10, 5, 0);
        assert_eq!(bwd.pos_at(12), Some(3));
        let wait = Segment::wait(0, 4, 7);
        assert_eq!(wait.pos_at(2), Some(7));
    }

    #[test]
    fn index_keys_match_line_intercepts() {
        // Fig. 9's leftmost slope-1 segment: s=⟨0,8⟩ → f=⟨5,13⟩, rotated
        // coordinate 4√2; our integer key is b = 8 - 0 = 8 = 4√2·√2.
        let seg = Segment {
            t0: 0,
            t1: 5,
            s0: 8,
            s1: 13,
        };
        assert_eq!(seg.index_key(), 8);
        // Two collinear slope-1 segments share a key.
        let later = Segment {
            t0: 3,
            t1: 6,
            s0: 11,
            s1: 14,
        };
        assert_eq!(later.index_key(), 8);
        // Slope -1: key is s + t.
        let back = Segment {
            t0: 2,
            t1: 5,
            s0: 9,
            s1: 6,
        };
        assert_eq!(back.index_key(), 11);
        let back2 = Segment {
            t0: 4,
            t1: 6,
            s0: 7,
            s1: 5,
        };
        assert_eq!(back2.index_key(), 11);
        // Slope 0: spatial coordinate.
        assert_eq!(Segment::wait(11, 16, 13).index_key(), 13);
    }

    #[test]
    fn occupancy_enumerates_inclusive_range() {
        let seg = Segment::travel(2, 4, 1);
        let occ: Vec<(Time, i32)> = seg.occupancy().collect();
        assert_eq!(occ, vec![(2, 4), (3, 3), (4, 2), (5, 1)]);
    }

    #[test]
    fn time_overlap() {
        let seg = Segment::wait(5, 10, 0);
        assert!(seg.time_overlaps(10, 20));
        assert!(seg.time_overlaps(0, 5));
        assert!(!seg.time_overlaps(11, 20));
        assert!(!seg.time_overlaps(0, 4));
    }

    #[test]
    fn validate_rejects_superluminal() {
        let bad = Segment {
            t0: 0,
            t1: 2,
            s0: 0,
            s1: 5,
        };
        assert!(!bad.validate());
    }
}
