//! Segment stores: collections of committed segments within one strip that
//! answer *earliest-collision* queries for candidate segments.
//!
//! [`NaiveStore`] is the ordered-set scheme of §V-B-2: all segments in one
//! red-black tree (std's `BTreeMap`) keyed by start time; a query binary
//! searches the time-overlap window and judges the survivors one by one —
//! `O(2·log n + n)`.
//!
//! The accelerated slope-based index of §V-D lives in [`crate::index`];
//! both implement [`SegmentStore`], which is what lets the SRP planner (and
//! the Fig. 22 ablation) swap them freely.

use crate::intersect::{earliest_collision, SegCollision};
use crate::segment::Segment;
use carp_warehouse::memory;
use carp_warehouse::types::Time;
use std::collections::BTreeMap;

/// Handle of an inserted segment, used for removal when a route retires.
pub type SegmentId = u64;

/// A collection of segments supporting insertion, removal and
/// earliest-collision queries (the operations of Algorithm 3).
///
/// Stores are `Send + Sync`: the sharded [`crate::engine::StoreEngine`]
/// fans batched collision probes out across partitions with scoped
/// threads, which requires shared read access from worker threads. All
/// stores here are plain owned data structures, so the bound is free.
pub trait SegmentStore: Send + Sync {
    /// Insert a segment, returning its removal handle.
    fn insert(&mut self, seg: Segment) -> SegmentId;

    /// Remove a previously inserted segment. Returns `false` when the
    /// `(id, segment)` pair is unknown.
    fn remove(&mut self, id: SegmentId, seg: &Segment) -> bool;

    /// Remove a batch of previously inserted segments in one call,
    /// returning how many were actually present. The default loops over
    /// [`SegmentStore::remove`]; stores override it when a batch admits
    /// cheaper bookkeeping (e.g. re-tightening duration high-water marks
    /// once per batch instead of never).
    fn remove_batch(&mut self, removals: &[(SegmentId, Segment)]) -> usize {
        removals
            .iter()
            .filter(|(id, seg)| self.remove(*id, seg))
            .count()
    }

    /// Earliest collision of a candidate segment against every stored
    /// segment (exact discrete semantics), or `None` when the candidate is
    /// compatible with all of them.
    fn earliest_collision(&self, seg: &Segment) -> Option<SegCollision>;

    /// Earliest collisions of many candidate segments, in input order.
    /// Semantically `queries.iter().map(|q| self.earliest_collision(q))`;
    /// the engine layer uses this per shard so a whole group of probes
    /// runs under a single lock acquisition.
    fn collide_many(&self, queries: &[Segment]) -> Vec<Option<SegCollision>> {
        queries.iter().map(|q| self.earliest_collision(q)).collect()
    }

    /// Earliest integer time `t ∈ [t0, t1]` at which grid number `s` is
    /// unoccupied — i.e. the point probe `Segment::point(t, s)` reports no
    /// collision — or `None` when every instant of the window is blocked.
    ///
    /// This is the primitive behind the planner's wait-probe loops (finding
    /// the first free departure instant at a crossing, or the first free
    /// start instant on a rack cell). A point only ever suffers *vertex*
    /// collisions (a swap needs both segments moving), so "free" is exactly
    /// "no stored segment occupies `(t, s)`".
    ///
    /// The default steps through the window with wait probes: query the
    /// remaining window as one waiting segment; if the earliest collision
    /// is strictly after the window start, the start is free, otherwise
    /// skip past the blocked instant. Stores override this when their
    /// layout admits a single-pass sweep.
    fn earliest_free_point(&self, t0: Time, t1: Time, s: i32) -> Option<Time> {
        let mut t = t0;
        while t <= t1 {
            match self.earliest_collision(&Segment::wait(t, t1, s)) {
                None => return Some(t),
                Some(c) if c.time > t => return Some(t),
                Some(_) => t += 1,
            }
        }
        None
    }

    /// Number of stored segments.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated heap bytes of the store (MC metric).
    fn memory_bytes(&self) -> usize;

    /// Snapshot of all stored segments, for tests and debugging.
    fn snapshot(&self) -> Vec<Segment>;
}

/// Sweep a list of blocked closed intervals (already clipped to
/// `[t0, t1]`) and return the earliest instant of the window not covered
/// by any of them. Shared by the single-pass `earliest_free_point`
/// overrides of [`NaiveStore`] and [`crate::index::SlopeIndexStore`].
pub(crate) fn earliest_uncovered(blocked: &mut [(Time, Time)], t0: Time, t1: Time) -> Option<Time> {
    blocked.sort_unstable();
    let mut t = t0;
    for &(b0, b1) in blocked.iter() {
        if b0 > t {
            return Some(t);
        }
        if b1 >= t {
            t = b1 + 1;
            if t > t1 {
                return None;
            }
        }
    }
    (t <= t1).then_some(t)
}

/// The naive ordered-set store of §V-B-2.
///
/// Segments are kept in a `BTreeMap` ordered by `(start time, id)`. Queries
/// scan the window `[q.t0 − max_duration, q.t1]` of start times — every
/// segment whose span can overlap the query — and judge each with the exact
/// intersection test. `max_duration` is a high-water mark (removals do not
/// lower it), which is conservative but always correct.
#[derive(Debug, Default, Clone)]
pub struct NaiveStore {
    by_start: BTreeMap<(Time, SegmentId), Segment>,
    max_duration: Time,
    next_id: SegmentId,
}

impl NaiveStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SegmentStore for NaiveStore {
    fn insert(&mut self, seg: Segment) -> SegmentId {
        debug_assert!(seg.validate(), "invalid segment {seg}");
        let id = self.next_id;
        self.next_id += 1;
        self.max_duration = self.max_duration.max(seg.duration());
        self.by_start.insert((seg.t0, id), seg);
        id
    }

    fn remove(&mut self, id: SegmentId, seg: &Segment) -> bool {
        self.by_start.remove(&(seg.t0, id)).is_some()
    }

    fn remove_batch(&mut self, removals: &[(SegmentId, Segment)]) -> usize {
        let mut removed = 0usize;
        for (id, seg) in removals {
            if self.by_start.remove(&(seg.t0, *id)).is_some() {
                removed += 1;
            }
        }
        // A batch is the one moment where re-tightening the duration
        // high-water mark pays for itself: one pass over the survivors
        // narrows every later query window back to the true maximum
        // (single `remove` keeps the conservative mark untouched).
        // Narrowing is sound: the window only needs to cover segments that
        // can still overlap a query, and those all have duration ≤ the
        // recomputed maximum.
        if removed > 0 {
            self.max_duration = self
                .by_start
                .values()
                .map(|s| s.duration())
                .max()
                .unwrap_or(0);
        }
        removed
    }

    fn earliest_collision(&self, seg: &Segment) -> Option<SegCollision> {
        let lo = seg.t0.saturating_sub(self.max_duration);
        let mut best: Option<SegCollision> = None;
        for (_, other) in self.by_start.range((lo, 0)..=(seg.t1, SegmentId::MAX)) {
            if other.t1 < seg.t0 {
                continue;
            }
            best = SegCollision::min_opt(best, earliest_collision(seg, other));
        }
        best
    }

    /// Single-pass override: one window scan collects, per stored segment,
    /// the closed interval during which it occupies `s` (whole span for a
    /// waiter, a single instant for a mover), then a sweep finds the first
    /// uncovered instant — versus the default's repeated wait probes, each
    /// of which rescans the window.
    fn earliest_free_point(&self, t0: Time, t1: Time, s: i32) -> Option<Time> {
        let lo = t0.saturating_sub(self.max_duration);
        let mut blocked: Vec<(Time, Time)> = Vec::new();
        for (_, other) in self.by_start.range((lo, 0)..=(t1, SegmentId::MAX)) {
            if other.t1 < t0 {
                continue;
            }
            if let Some((b0, b1)) = other.occupancy_span_at(s) {
                if b1 >= t0 && b0 <= t1 {
                    blocked.push((b0.max(t0), b1.min(t1)));
                }
            }
        }
        earliest_uncovered(&mut blocked, t0, t1)
    }

    fn len(&self) -> usize {
        self.by_start.len()
    }

    fn memory_bytes(&self) -> usize {
        memory::btreemap_bytes(&self.by_start) + core::mem::size_of::<Self>()
    }

    fn snapshot(&self) -> Vec<Segment> {
        self.by_start.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::CollisionKind;

    #[test]
    fn insert_query_remove_cycle() {
        let mut store = NaiveStore::new();
        let seg = Segment::travel(0, 0, 5);
        let id = store.insert(seg);
        assert_eq!(store.len(), 1);

        let head_on = Segment::travel(0, 5, 0);
        let c = store.earliest_collision(&head_on).expect("collide");
        assert_eq!(c.kind, CollisionKind::Swap);

        assert!(store.remove(id, &seg));
        assert!(store.is_empty());
        assert_eq!(store.earliest_collision(&head_on), None);
        assert!(!store.remove(id, &seg), "double remove must fail");
    }

    #[test]
    fn earliest_among_many() {
        let mut store = NaiveStore::new();
        store.insert(Segment::wait(8, 12, 3)); // vertex at 8 for a 0→9 mover
        store.insert(Segment::wait(4, 12, 7)); // vertex at 7
        store.insert(Segment::wait(0, 2, 1)); // vertex at 1
        let mover = Segment::travel(0, 0, 9);
        let c = store.earliest_collision(&mover).expect("collide");
        assert_eq!(c.time, 1);
    }

    #[test]
    fn long_early_segment_is_not_missed() {
        let mut store = NaiveStore::new();
        // Starts long before the query but still overlaps it.
        store.insert(Segment::wait(0, 100, 5));
        let q = Segment::travel(50, 0, 9);
        let c = store.earliest_collision(&q).expect("collide");
        assert_eq!(c.time, 55);
    }

    #[test]
    fn no_false_positives_outside_window() {
        let mut store = NaiveStore::new();
        store.insert(Segment::travel(0, 0, 5));
        let later = Segment::travel(100, 5, 0);
        assert_eq!(store.earliest_collision(&later), None);
    }

    #[test]
    fn memory_grows_and_shrinks() {
        let mut store = NaiveStore::new();
        let base = store.memory_bytes();
        let seg = Segment::wait(0, 1, 0);
        let id = store.insert(seg);
        assert!(store.memory_bytes() > base);
        store.remove(id, &seg);
        assert_eq!(store.memory_bytes(), base);
    }

    #[test]
    fn snapshot_returns_all() {
        let mut store = NaiveStore::new();
        store.insert(Segment::wait(3, 4, 1));
        store.insert(Segment::travel(0, 0, 2));
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.contains(&Segment::wait(3, 4, 1)));
    }
}
