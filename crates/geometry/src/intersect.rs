//! Segment collision tests.
//!
//! Two implementations live here:
//!
//! * [`collide_paper`] / [`collision_time_paper`] — the paper's Eq. (2)
//!   cross-product intersection test and Eq. (3) collision-time formula,
//!   kept verbatim for fidelity and benchmarked against the exact test;
//! * [`earliest_collision`] — an **exact integer** test of the discrete
//!   collision semantics (Definition 3) on the segment representation. The
//!   continuous Eq. (2) uses strict inequalities and therefore misses
//!   endpoint-touching and collinear-overlap cases that *are* vertex
//!   conflicts in the discrete model; the planner uses the exact test (see
//!   DESIGN.md §3).
//!
//! Exactness argument: restricted to one strip, robots are linear motions
//! with slopes in {−1, 0, 1}. For segments `φ, ψ` overlapping in time on
//! `[lo, hi]`, the difference `d(t) = φ(t) − ψ(t)` is linear with slope
//! `k_φ − k_ψ ∈ {−2..2}`. A **vertex conflict** is an integer root of
//! `d(t) = 0` in `[lo, hi]`; a **swap conflict** requires opposite unit
//! slopes and an integer `t ∈ [lo, hi−1]` with `d(t) = k_ψ` (the robots
//! cross between `t` and `t+1`). Both reduce to exact integer divisions.

use crate::segment::Segment;
use carp_warehouse::types::Time;

/// Kind of a segment-level collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollisionKind {
    /// Same grid number at the same integer time (Fig. 6(a)).
    Vertex,
    /// Opposite-slope segments crossing between integer times (Fig. 6(b));
    /// the reported time is the floor, as in Eq. (3).
    Swap,
}

/// A collision between two segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegCollision {
    /// Collision time (floored for swaps, per Eq. (3)).
    pub time: Time,
    /// Vertex or swap.
    pub kind: CollisionKind,
}

impl SegCollision {
    /// Ordering key: a swap at `t` happens at `t + ½`, strictly after a
    /// vertex at `t` and strictly before one at `t + 1`.
    #[inline]
    fn order_key(&self) -> u64 {
        (self.time as u64) << 1 | matches!(self.kind, CollisionKind::Swap) as u64
    }

    /// The earlier of two optional collisions.
    pub fn min_opt(a: Option<SegCollision>, b: Option<SegCollision>) -> Option<SegCollision> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.order_key() <= y.order_key() { x } else { y }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// Exact earliest collision between two segments under the discrete
/// semantics of Definition 3, or `None` when they are compatible.
pub fn earliest_collision(phi: &Segment, psi: &Segment) -> Option<SegCollision> {
    let lo = phi.t0.max(psi.t0);
    let hi = phi.t1.min(psi.t1);
    if lo > hi {
        return None;
    }
    let kp = phi.slope() as i64;
    let kq = psi.slope() as i64;
    // d(t) = phi(t) - psi(t); evaluate at lo.
    let d_lo =
        phi.pos_at(lo).expect("lo in range") as i64 - psi.pos_at(lo).expect("lo in range") as i64;
    let dd = kp - kq;

    let vertex = linear_root(d_lo, dd, 0, (hi - lo) as i64).map(|off| SegCollision {
        time: lo + off as Time,
        kind: CollisionKind::Vertex,
    });

    let swap = if kp == -kq && kp != 0 && hi > lo {
        linear_root(d_lo, dd, kq, (hi - lo - 1) as i64).map(|off| SegCollision {
            time: lo + off as Time,
            kind: CollisionKind::Swap,
        })
    } else {
        None
    };

    SegCollision::min_opt(vertex, swap)
}

/// Smallest integer `x ∈ [0, max_off]` with `d_lo + dd·x = target`.
#[inline]
fn linear_root(d_lo: i64, dd: i64, target: i64, max_off: i64) -> Option<i64> {
    if max_off < 0 {
        return None;
    }
    let num = target - d_lo;
    if dd == 0 {
        return (num == 0).then_some(0);
    }
    (num % dd == 0)
        .then(|| num / dd)
        .filter(|&x| (0..=max_off).contains(&x))
}

/// `true` when the two segments collide (exact test).
pub fn collide_exact(phi: &Segment, psi: &Segment) -> bool {
    earliest_collision(phi, psi).is_some()
}

/// The paper's Eq. (2): proper-crossing test via cross products, applied
/// after the time-range overlap prefilter. Strict inequalities — endpoint
/// touching and collinear overlap report `false` (see module docs).
pub fn collide_paper(phi: &Segment, psi: &Segment) -> bool {
    if phi.t0.max(psi.t0) > phi.t1.min(psi.t1) {
        return false;
    }
    let (ps, pf) = (
        (phi.t0 as i64, phi.s0 as i64),
        (phi.t1 as i64, phi.s1 as i64),
    );
    let (qs, qf) = (
        (psi.t0 as i64, psi.s0 as i64),
        (psi.t1 as i64, psi.s1 as i64),
    );
    let cross = |a: (i64, i64), b: (i64, i64)| a.0 * b.1 - a.1 * b.0;
    let sub = |a: (i64, i64), b: (i64, i64)| (a.0 - b.0, a.1 - b.1);
    // ((s_φ−f_ψ)×(s_ψ−f_ψ)) · ((f_φ−f_ψ)×(s_ψ−f_ψ)) < 0
    let side_a = cross(sub(ps, qf), sub(qs, qf)) * cross(sub(pf, qf), sub(qs, qf)) < 0;
    // ((f_ψ−f_φ)×(s_φ−f_φ)) · ((s_ψ−f_φ)×(s_φ−f_φ)) < 0
    let side_b = cross(sub(qf, pf), sub(ps, pf)) * cross(sub(qs, pf), sub(ps, pf)) < 0;
    side_a && side_b
}

/// The paper's Eq. (3): collision time of two opposite-slope segments,
/// `⌊(s_φ\[0\] + s_ψ\[0\] + |s_φ\[1\] − s_ψ\[1\]|) / 2⌋`.
///
/// Valid for slopes (1, −1) in either order; the floor returns the earlier
/// integer time for swap conflicts (Fig. 6(b)).
pub fn collision_time_paper(phi: &Segment, psi: &Segment) -> Time {
    let sum = phi.t0 as i64 + psi.t0 as i64 + (phi.s0 as i64 - psi.s0 as i64).abs();
    (sum / 2) as Time
}

/// Brute-force reference implementation: expand both segments to their
/// discrete `(time, grid)` occupancy and apply Definition 3 directly.
/// Exposed for property tests across the workspace; never used on hot paths.
pub fn earliest_collision_reference(phi: &Segment, psi: &Segment) -> Option<SegCollision> {
    let lo = phi.t0.max(psi.t0);
    let hi = phi.t1.min(psi.t1);
    if lo > hi {
        return None;
    }
    let mut best: Option<SegCollision> = None;
    for t in lo..=hi {
        let (a, b) = (phi.pos_at(t).unwrap(), psi.pos_at(t).unwrap());
        if a == b {
            best = SegCollision::min_opt(
                best,
                Some(SegCollision {
                    time: t,
                    kind: CollisionKind::Vertex,
                }),
            );
        }
        if t < hi {
            let (na, nb) = (phi.pos_at(t + 1).unwrap(), psi.pos_at(t + 1).unwrap());
            if a == nb && b == na && a != na {
                best = SegCollision::min_opt(
                    best,
                    Some(SegCollision {
                        time: t,
                        kind: CollisionKind::Swap,
                    }),
                );
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_on_crossing_is_swap_at_half_time() {
        // φ: forward 0→3 over t=0..3; ψ: backward 3→0 — cross at t=1.5.
        let phi = Segment::travel(0, 0, 3);
        let psi = Segment::travel(0, 3, 0);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(c.kind, CollisionKind::Swap);
        assert_eq!(c.time, 1);
        assert_eq!(collision_time_paper(&phi, &psi), 1);
        assert!(collide_paper(&phi, &psi));
    }

    #[test]
    fn head_on_meeting_is_vertex_at_integer_time() {
        // φ: 0→4, ψ: 4→0 — meet exactly at (t=2, s=2).
        let phi = Segment::travel(0, 0, 4);
        let psi = Segment::travel(0, 4, 0);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(c.kind, CollisionKind::Vertex);
        assert_eq!(c.time, 2);
        assert_eq!(collision_time_paper(&phi, &psi), 2);
        assert!(collide_paper(&phi, &psi));
    }

    #[test]
    fn mover_hits_waiter() {
        // ψ waits at s=5 over t=0..10; φ moves 0→9 reaching s=5 at t=5.
        let phi = Segment::travel(0, 0, 9);
        let psi = Segment::wait(0, 10, 5);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(
            c,
            SegCollision {
                time: 5,
                kind: CollisionKind::Vertex
            }
        );
    }

    #[test]
    fn parallel_same_line_overlap_is_vertex() {
        // Both move forward on the same line, overlapping in time: the
        // follower occupies the leader's cells at the same instants.
        let phi = Segment::travel(0, 0, 5);
        let psi = Segment::travel(2, 2, 7); // same line s = t
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(c.kind, CollisionKind::Vertex);
        assert_eq!(c.time, 2);
        // Eq. (2) misses collinear overlap (documented limitation).
        assert!(!collide_paper(&phi, &psi));
    }

    #[test]
    fn parallel_shifted_lines_never_collide() {
        let phi = Segment::travel(0, 0, 5);
        let psi = Segment::travel(0, 1, 6); // one cell ahead, same slope
        assert_eq!(earliest_collision(&phi, &psi), None);
        assert!(!collide_paper(&phi, &psi));
    }

    #[test]
    fn endpoint_touch_is_vertex_conflict() {
        // φ ends at (t=3, s=3); ψ starts at (t=3, s=3): both robots occupy
        // grid 3 at time 3 — a real vertex conflict the strict Eq. (2) misses.
        let phi = Segment::travel(0, 0, 3);
        let psi = Segment::travel(3, 3, 6);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(
            c,
            SegCollision {
                time: 3,
                kind: CollisionKind::Vertex
            }
        );
        assert!(!collide_paper(&phi, &psi));
    }

    #[test]
    fn disjoint_times_no_collision() {
        let phi = Segment::travel(0, 0, 3);
        let psi = Segment::travel(10, 3, 0);
        assert_eq!(earliest_collision(&phi, &psi), None);
        assert!(!collide_paper(&phi, &psi));
    }

    #[test]
    fn two_waiters_same_cell_collide() {
        let phi = Segment::wait(0, 5, 2);
        let psi = Segment::wait(3, 8, 2);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(
            c,
            SegCollision {
                time: 3,
                kind: CollisionKind::Vertex
            }
        );
    }

    #[test]
    fn two_waiters_different_cells_do_not() {
        let phi = Segment::wait(0, 5, 2);
        let psi = Segment::wait(0, 5, 3);
        assert_eq!(earliest_collision(&phi, &psi), None);
    }

    #[test]
    fn point_segment_on_path_collides() {
        let phi = Segment::travel(0, 0, 5);
        let psi = Segment::point(3, 3);
        assert_eq!(
            earliest_collision(&phi, &psi),
            Some(SegCollision {
                time: 3,
                kind: CollisionKind::Vertex
            })
        );
    }

    #[test]
    fn adjacent_cells_opposite_slopes_swap() {
        // φ at s=0 moving to 1 at t=0..1; ψ at s=1 moving to 0 — pure swap.
        let phi = Segment::travel(0, 0, 1);
        let psi = Segment::travel(0, 1, 0);
        let c = earliest_collision(&phi, &psi).expect("collide");
        assert_eq!(
            c,
            SegCollision {
                time: 0,
                kind: CollisionKind::Swap
            }
        );
    }

    #[test]
    fn exact_matches_reference_on_crafted_cases() {
        let cases = [
            (Segment::travel(0, 0, 8), Segment::travel(2, 8, 0)),
            (Segment::travel(5, 3, 9), Segment::wait(0, 20, 7)),
            (Segment::wait(0, 3, 1), Segment::travel(0, 4, 0)),
            (Segment::point(2, 2), Segment::point(2, 2)),
            (Segment::point(2, 2), Segment::point(3, 2)),
            (Segment::travel(0, 0, 6), Segment::travel(1, 0, 6)),
        ];
        for (a, b) in cases {
            assert_eq!(
                earliest_collision(&a, &b),
                earliest_collision_reference(&a, &b),
                "mismatch for {a} vs {b}"
            );
        }
    }

    #[test]
    fn collision_is_symmetric() {
        let phi = Segment::travel(0, 0, 8);
        let psi = Segment::travel(2, 8, 0);
        assert_eq!(
            earliest_collision(&phi, &psi),
            earliest_collision(&psi, &phi)
        );
    }

    #[test]
    fn eq3_matches_fig6_floor_convention() {
        // Fig. 6(b): swap between t and t+1 must report the earlier time.
        let phi = Segment::travel(0, 0, 1);
        let psi = Segment::travel(0, 1, 0);
        assert_eq!(collision_time_paper(&phi, &psi), 0);
    }
}
