//! Property tests for the grid-level substrate: reservation-table
//! consistency with the ground-truth validator, A\* route legality, and
//! CBS optimality against brute force on tiny instances.

use carp_spacetime::cbs::{CbsAgent, CbsSolver};
use carp_spacetime::{AStarConfig, ReservationTable, SpaceTimeAStar};
use carp_warehouse::collision::{first_conflict, is_collision_free};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use carp_warehouse::WarehouseMatrix;
use proptest::prelude::*;

/// A random legal route on an open `rows × cols` grid.
fn arb_route(rows: u16, cols: u16) -> impl Strategy<Value = Route> {
    (
        0u32..20,
        0..rows,
        0..cols,
        prop::collection::vec(0u8..5, 1..25),
    )
        .prop_map(move |(start, r0, c0, moves)| {
            let mut cur = Cell::new(r0, c0);
            let mut grids = vec![cur];
            for m in moves {
                let next = match m {
                    0 => cur.step(carp_warehouse::types::Dir::North, rows, cols),
                    1 => cur.step(carp_warehouse::types::Dir::South, rows, cols),
                    2 => cur.step(carp_warehouse::types::Dir::West, rows, cols),
                    3 => cur.step(carp_warehouse::types::Dir::East, rows, cols),
                    _ => Some(cur), // wait
                };
                cur = next.unwrap_or(cur);
                grids.push(cur);
            }
            Route::new(start, grids)
        })
}

proptest! {
    /// Reservation-table blocking agrees with the pairwise conflict
    /// validator: a candidate route is conflict-free against a reserved
    /// route iff every candidate step passes the table's checks.
    #[test]
    fn reservation_checks_match_validator(a in arb_route(6, 6), b in arb_route(6, 6)) {
        let mut rt = ReservationTable::new();
        rt.reserve(&a, 1);
        let mut table_ok = true;
        for (t, cell) in b.occupancy() {
            if !rt.vertex_free(cell, t) {
                table_ok = false;
            }
        }
        for (k, w) in b.grids.windows(2).enumerate() {
            if w[0] != w[1] && !rt.move_free(w[0], w[1], b.start + k as Time) {
                table_ok = false;
            }
        }
        prop_assert_eq!(table_ok, first_conflict(&a, &b).is_none());
    }

    /// A* routes against random reservations are legal and conflict-free.
    #[test]
    fn astar_routes_avoid_reservations(
        blockers in prop::collection::vec(arb_route(6, 6), 0..4),
        sr in 0u16..6, sc in 0u16..6, gr in 0u16..6, gc in 0u16..6,
    ) {
        let m = WarehouseMatrix::empty(6, 6);
        let mut rt = ReservationTable::new();
        for (i, b) in blockers.iter().enumerate() {
            // Blockers may conflict with each other; reserve only the
            // compatible prefix of the set.
            if blockers[..i].iter().all(|x| first_conflict(x, b).is_none()) {
                rt.reserve(b, i as u64);
            }
        }
        let mut astar = SpaceTimeAStar::new(AStarConfig { horizon: 128, ..AStarConfig::default() });
        if let Some(route) = astar.plan(&m, &rt, None, Cell::new(sr, sc), Cell::new(gr, gc), 0) {
            prop_assert!(route.validate(&m).is_ok());
            for (i, b) in blockers.iter().enumerate() {
                if blockers[..i].iter().all(|x| first_conflict(x, b).is_none()) {
                    prop_assert!(first_conflict(&route, b).is_none(), "conflicts blocker {}", i);
                }
            }
        }
    }

    /// CBS solutions on two-agent instances are collision-free and
    /// sum-of-costs optimal w.r.t. exhaustive per-agent lower bounds: no
    /// agent can beat its solo shortest path, and CBS never spends more
    /// than solo costs + the detour bound of one conflict resolution.
    #[test]
    fn cbs_two_agents_sound_and_tight(
        s1 in (0u16..4, 0u16..4), g1 in (0u16..4, 0u16..4),
        s2 in (0u16..4, 0u16..4), g2 in (0u16..4, 0u16..4),
    ) {
        prop_assume!(s1 != s2 && g1 != g2);
        let m = WarehouseMatrix::empty(4, 4);
        let agents = [
            CbsAgent { start: Cell::new(s1.0, s1.1), goal: Cell::new(g1.0, g1.1), depart: 0 },
            CbsAgent { start: Cell::new(s2.0, s2.1), goal: Cell::new(g2.0, g2.1), depart: 0 },
        ];
        let mut cbs = CbsSolver::default();
        if let Some(routes) = cbs.solve(&m, &ReservationTable::new(), &agents) {
            prop_assert!(is_collision_free(&routes));
            let solo: Time = agents.iter().map(|a| a.start.manhattan(a.goal)).sum();
            let cost: Time = routes.iter().map(|r| r.duration()).sum();
            prop_assert!(cost >= solo, "below the solo lower bound");
            // On a 4x4 open grid one conflict costs at most a small detour.
            prop_assert!(cost <= solo + 6, "cost {} vs solo {}", cost, solo);
            for (r, a) in routes.iter().zip(&agents) {
                prop_assert_eq!(r.origin(), a.start);
                prop_assert_eq!(r.destination(), a.goal);
            }
        }
    }
}
