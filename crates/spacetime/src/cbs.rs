//! Conflict-Based Search (Sharon et al. \[2\]): the optimal multi-agent
//! pathfinding solver the RP baseline \[3\] replans conflicting groups with.
//!
//! CBS runs a best-first search over a *constraint tree*: each node holds a
//! set of per-agent space-time constraints and one route per agent planned
//! by the low-level solver (space-time A\*) under those constraints. When
//! two routes conflict, the node branches into two children, each forbidding
//! the conflict for one of the agents.

use crate::astar::{AStarConfig, SpaceTimeAStar};
use crate::reservation::ReservationTable;
use carp_warehouse::collision::{first_conflict, ConflictKind};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashSet};

/// Per-agent space-time constraints imposed by CBS branching.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    vertices: HashSet<(Cell, Time)>,
    edges: HashSet<(Cell, Cell, Time)>,
}

impl ConstraintSet {
    /// Forbid occupying `cell` at time `t`.
    pub fn block_vertex(&mut self, cell: Cell, t: Time) {
        self.vertices.insert((cell, t));
    }

    /// Forbid the directed motion `from → to` departing at time `t`.
    pub fn block_edge(&mut self, from: Cell, to: Cell, t: Time) {
        self.edges.insert((from, to, t));
    }

    /// Whether occupying `cell` at `t` is forbidden.
    #[inline]
    pub fn vertex_blocked(&self, cell: Cell, t: Time) -> bool {
        self.vertices.contains(&(cell, t))
    }

    /// Whether the motion `from → to` at `t` is forbidden.
    #[inline]
    pub fn edge_blocked(&self, from: Cell, to: Cell, t: Time) -> bool {
        self.edges.contains(&(from, to, t))
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.vertices.len() + self.edges.len()
    }

    /// Whether no constraints are held.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        memory::hashset_bytes(&self.vertices) + memory::hashset_bytes(&self.edges)
    }
}

/// One agent of a CBS instance.
#[derive(Debug, Clone, Copy)]
pub struct CbsAgent {
    /// Origin cell.
    pub start: Cell,
    /// Destination cell.
    pub goal: Cell,
    /// Earliest departure time.
    pub depart: Time,
}

/// CBS tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CbsConfig {
    /// Cap on constraint-tree nodes before giving up (the RP baseline then
    /// falls back to prioritized planning).
    pub max_nodes: usize,
    /// Low-level search configuration.
    pub astar: AStarConfig,
}

impl Default for CbsConfig {
    fn default() -> Self {
        CbsConfig {
            max_nodes: 512,
            astar: AStarConfig::default(),
        }
    }
}

/// Statistics of the most recent [`CbsSolver::solve`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct CbsStats {
    /// Constraint-tree nodes expanded.
    pub nodes: usize,
    /// Low-level A\* invocations.
    pub low_level_calls: usize,
    /// Peak bytes across tree nodes and low-level searches.
    pub peak_bytes: usize,
}

/// Conflict-Based Search solver.
#[derive(Debug, Default)]
pub struct CbsSolver {
    /// Configuration.
    pub config: CbsConfig,
    /// Statistics of the last call.
    pub stats: CbsStats,
}

struct CtNode {
    cost: Time,
    constraints: Vec<ConstraintSet>,
    routes: Vec<Route>,
}

impl CtNode {
    fn bytes(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.memory_bytes())
            .sum::<usize>()
            + self.routes.iter().map(|r| r.memory_bytes()).sum::<usize>()
    }
}

impl PartialEq for CtNode {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for CtNode {}
impl Ord for CtNode {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        other.cost.cmp(&self.cost) // min-heap by sum of costs
    }
}
impl PartialOrd for CtNode {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl CbsSolver {
    /// Create a solver with the given configuration.
    pub fn new(config: CbsConfig) -> Self {
        CbsSolver {
            config,
            stats: CbsStats::default(),
        }
    }

    /// Solve for all agents jointly, avoiding `external` reservations held
    /// by routes outside the replanned group. Returns one route per agent
    /// (sum-of-costs optimal w.r.t. the low-level search space) or `None`
    /// when the node budget is exhausted or some agent has no route.
    pub fn solve(
        &mut self,
        matrix: &WarehouseMatrix,
        external: &ReservationTable,
        agents: &[CbsAgent],
    ) -> Option<Vec<Route>> {
        self.stats = CbsStats::default();
        let mut astar = SpaceTimeAStar::new(self.config.astar);
        fn low_level(
            stats: &mut CbsStats,
            astar: &mut SpaceTimeAStar,
            matrix: &WarehouseMatrix,
            external: &ReservationTable,
            constraints: &ConstraintSet,
            a: &CbsAgent,
        ) -> Option<Route> {
            stats.low_level_calls += 1;
            let r = astar.plan(
                matrix,
                external,
                Some(constraints),
                a.start,
                a.goal,
                a.depart,
            );
            stats.peak_bytes = stats.peak_bytes.max(astar.stats.peak_bytes);
            r
        }

        let root_constraints = vec![ConstraintSet::default(); agents.len()];
        let mut routes = Vec::with_capacity(agents.len());
        for (cs, a) in root_constraints.iter().zip(agents) {
            routes.push(low_level(
                &mut self.stats,
                &mut astar,
                matrix,
                external,
                cs,
                a,
            )?);
        }
        let mut open = BinaryHeap::new();
        let cost = routes.iter().map(|r| r.duration()).sum();
        open.push(CtNode {
            cost,
            constraints: root_constraints,
            routes,
        });

        while let Some(node) = open.pop() {
            self.stats.nodes += 1;
            if self.stats.nodes > self.config.max_nodes {
                return None;
            }
            self.stats.peak_bytes = self.stats.peak_bytes.max(node.bytes() * open.len().max(1));
            let Some((i, j, conflict)) = find_first_conflict(&node.routes) else {
                return Some(node.routes);
            };
            // Branch: forbid the conflict for agent i, then for agent j.
            for &(agent, other) in &[(i, j), (j, i)] {
                let mut constraints = node.constraints.clone();
                match conflict.kind {
                    ConflictKind::Vertex => {
                        constraints[agent].block_vertex(conflict.cell, conflict.time);
                    }
                    ConflictKind::Swap => {
                        let (a, b) = (&node.routes[agent], &node.routes[other]);
                        let from = a.position_at(conflict.time).expect("conflict inside route");
                        let to = b.position_at(conflict.time).expect("conflict inside route");
                        constraints[agent].block_edge(from, to, conflict.time);
                    }
                }
                if let Some(new_route) = low_level(
                    &mut self.stats,
                    &mut astar,
                    matrix,
                    external,
                    &constraints[agent],
                    &agents[agent],
                ) {
                    let mut routes = node.routes.clone();
                    routes[agent] = new_route;
                    let cost = routes.iter().map(|r| r.duration()).sum();
                    open.push(CtNode {
                        cost,
                        constraints,
                        routes,
                    });
                }
            }
        }
        None
    }
}

/// First pairwise conflict among `routes`, with the indices involved.
fn find_first_conflict(
    routes: &[Route],
) -> Option<(usize, usize, carp_warehouse::collision::Conflict)> {
    let mut best: Option<(usize, usize, carp_warehouse::collision::Conflict)> = None;
    for i in 0..routes.len() {
        for j in i + 1..routes.len() {
            if let Some(c) = first_conflict(&routes[i], &routes[j]) {
                if best.as_ref().is_none_or(|(_, _, b)| c.time < b.time) {
                    best = Some((i, j, c));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::is_collision_free;

    #[test]
    fn resolves_head_on_corridor_conflict() {
        // Two agents traverse the same corridor in opposite directions; one
        // must dodge into the bay at (1,2).
        let m = WarehouseMatrix::from_ascii(
            "#####\n\
             .....\n\
             ##.##",
        );
        let agents = [
            CbsAgent {
                start: Cell::new(1, 0),
                goal: Cell::new(1, 4),
                depart: 0,
            },
            CbsAgent {
                start: Cell::new(1, 4),
                goal: Cell::new(1, 0),
                depart: 0,
            },
        ];
        let mut cbs = CbsSolver::default();
        let routes = cbs
            .solve(&m, &ReservationTable::new(), &agents)
            .expect("solvable");
        assert!(is_collision_free(&routes));
        assert_eq!(routes[0].destination(), Cell::new(1, 4));
        assert_eq!(routes[1].destination(), Cell::new(1, 0));
        for r in &routes {
            assert!(r.validate(&m).is_ok());
        }
    }

    #[test]
    fn independent_agents_get_shortest_routes() {
        let m = WarehouseMatrix::empty(6, 6);
        let agents = [
            CbsAgent {
                start: Cell::new(0, 0),
                goal: Cell::new(0, 5),
                depart: 0,
            },
            CbsAgent {
                start: Cell::new(5, 0),
                goal: Cell::new(5, 5),
                depart: 0,
            },
        ];
        let mut cbs = CbsSolver::default();
        let routes = cbs
            .solve(&m, &ReservationTable::new(), &agents)
            .expect("solvable");
        assert_eq!(routes[0].duration(), 5);
        assert_eq!(routes[1].duration(), 5);
        assert_eq!(cbs.stats.nodes, 1, "no conflicts, root suffices");
    }

    #[test]
    fn respects_external_reservations() {
        let m = WarehouseMatrix::empty(4, 4);
        let mut external = ReservationTable::new();
        let outsider = Route::new(0, (0..4).map(|i| Cell::new(i, 1)).collect());
        external.reserve(&outsider, 99);
        let agents = [CbsAgent {
            start: Cell::new(0, 0),
            goal: Cell::new(0, 3),
            depart: 0,
        }];
        let mut cbs = CbsSolver::default();
        let routes = cbs.solve(&m, &external, &agents).expect("solvable");
        assert!(first_conflict(&routes[0], &outsider).is_none());
    }

    #[test]
    fn crossing_agents_are_separated() {
        let m = WarehouseMatrix::empty(5, 5);
        // Both want to pass through the centre at the same instant.
        let agents = [
            CbsAgent {
                start: Cell::new(2, 0),
                goal: Cell::new(2, 4),
                depart: 0,
            },
            CbsAgent {
                start: Cell::new(0, 2),
                goal: Cell::new(4, 2),
                depart: 0,
            },
        ];
        let mut cbs = CbsSolver::default();
        let routes = cbs
            .solve(&m, &ReservationTable::new(), &agents)
            .expect("solvable");
        assert!(is_collision_free(&routes));
        // Optimality: at most one agent pays a 1-step detour/wait.
        let total: Time = routes.iter().map(|r| r.duration()).sum();
        assert!(total <= 9, "sum of costs {total} should be ≤ 9");
    }

    #[test]
    fn node_budget_exhaustion_returns_none() {
        let m = WarehouseMatrix::from_ascii(
            "#####\n\
             .....\n\
             #####",
        );
        // Pure corridor, no bays: opposite traversal is infeasible; CBS must
        // keep branching until the budget runs out.
        let agents = [
            CbsAgent {
                start: Cell::new(1, 0),
                goal: Cell::new(1, 4),
                depart: 0,
            },
            CbsAgent {
                start: Cell::new(1, 4),
                goal: Cell::new(1, 0),
                depart: 0,
            },
        ];
        let mut cbs = CbsSolver::new(CbsConfig {
            max_nodes: 16,
            astar: AStarConfig {
                max_expansions: 5_000,
                horizon: 32,
                max_depart_delay: 8,
                collision_horizon: None,
            },
        });
        assert!(cbs.solve(&m, &ReservationTable::new(), &agents).is_none());
    }
}
