//! Space-time A\* (Hart et al. \[7\]): shortest-route search in the
//! 3-dimensional (2-D grid + 1-D time) space, with wait moves, reservation
//! awareness and optional CBS constraints.
//!
//! This is the search engine of every baseline planner and of SRP's rare
//! fallback path. Its `O((HW)²)`-ish behaviour on congested instances is
//! precisely the bottleneck the strip-based framework removes (§I, §VII-B).

use crate::cbs::ConstraintSet;
use crate::reservation::ReservationTable;
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashMap};

/// Tuning knobs for the search.
#[derive(Debug, Clone, Copy)]
pub struct AStarConfig {
    /// Hard cap on node expansions before giving up.
    pub max_expansions: usize,
    /// Maximum route duration (time horizon) relative to the departure.
    pub horizon: Time,
    /// How many time steps the departure may be postponed when the origin
    /// cell itself is reserved at the requested time.
    pub max_depart_delay: Time,
    /// Absolute time beyond which reservations and constraints are ignored
    /// (`None` = always enforced). This is the *time window* of windowed
    /// planners such as TWP \[5\]: collisions are only resolved within the
    /// window; the tail of the route is planned as if traffic-free and
    /// repaired when the window advances. Up to the horizon the search
    /// queries *both* reservation layers — exclusive hard bookings and
    /// peers' optimistic soft tails — so a windowed commit of everything
    /// the search verified stays exclusivity-safe by construction.
    pub collision_horizon: Option<Time>,
}

impl Default for AStarConfig {
    fn default() -> Self {
        AStarConfig {
            max_expansions: 400_000,
            horizon: 4096,
            max_depart_delay: 256,
            collision_horizon: None,
        }
    }
}

/// Counters describing one search, used by the TC/MC experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct AStarStats {
    /// Nodes popped from the open list.
    pub expansions: usize,
    /// Nodes pushed to the open list.
    pub generated: usize,
    /// Peak bytes of open + closed structures during the search — the
    /// "runtime space consumption" component of the paper's MC metric.
    pub peak_bytes: usize,
}

/// Space-time A\* planner.
#[derive(Debug, Default, Clone)]
pub struct SpaceTimeAStar {
    /// Configuration used by [`SpaceTimeAStar::plan`].
    pub config: AStarConfig,
    /// Statistics of the most recent search.
    pub stats: AStarStats,
}

#[derive(PartialEq, Eq)]
struct Node {
    f: Time,
    g: Time,
    cell: Cell,
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Min-heap by f; tie-break prefers larger g (deeper nodes), the
        // standard choice that keeps A* from dithering near the goal.
        other
            .f
            .cmp(&self.f)
            .then(self.g.cmp(&other.g))
            .then(other.cell.cmp(&self.cell))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SpaceTimeAStar {
    /// Create a planner with the given configuration.
    pub fn new(config: AStarConfig) -> Self {
        SpaceTimeAStar {
            config,
            stats: AStarStats::default(),
        }
    }

    /// Plan the shortest route from `start` to `goal` departing no earlier
    /// than `depart`, avoiding `reservations` and `constraints`.
    ///
    /// Rack cells are traversable only as the route's own endpoints: the
    /// robot may sit on / leave its `start` and may *arrive* at `goal`, but
    /// never crosses any other rack (Definition 1 movement rules plus the
    /// rack-endpoint completion described in DESIGN.md §3).
    ///
    /// Returns `None` when the expansion budget or horizon is exhausted.
    pub fn plan(
        &mut self,
        matrix: &WarehouseMatrix,
        reservations: &ReservationTable,
        constraints: Option<&ConstraintSet>,
        start: Cell,
        goal: Cell,
        depart: Time,
    ) -> Option<Route> {
        self.stats = AStarStats::default();
        let window = self.config.collision_horizon.unwrap_or(Time::MAX);
        let blocked = |cell: Cell, t: Time| {
            t <= window
                && (!reservations.vertex_free(cell, t)
                    || constraints.is_some_and(|c| c.vertex_blocked(cell, t)))
        };
        // Postpone departure while the origin itself is contested.
        let mut depart = depart;
        let deadline = depart + self.config.max_depart_delay;
        while blocked(start, depart) {
            depart += 1;
            if depart > deadline {
                return None;
            }
        }
        if start == goal {
            return Some(Route::stationary(depart, start));
        }

        let mut open = BinaryHeap::new();
        let mut parents: HashMap<(Cell, Time), (Cell, Time)> = HashMap::new();
        let mut closed: HashMap<(Cell, Time), Time> = HashMap::new();
        open.push(Node {
            f: depart + start.manhattan(goal),
            g: depart,
            cell: start,
        });
        closed.insert((start, depart), depart);

        while let Some(Node { g: t, cell, .. }) = open.pop() {
            self.stats.expansions += 1;
            if self.stats.expansions > self.config.max_expansions {
                return None;
            }
            if cell == goal {
                self.track_peak(&open, &parents);
                return Some(reconstruct(&parents, start, depart, cell, t));
            }
            if t - depart >= self.config.horizon {
                continue;
            }
            let nt = t + 1;
            let mut push = |ncell: Cell, open: &mut BinaryHeap<Node>| {
                if closed.contains_key(&(ncell, nt)) {
                    return;
                }
                closed.insert((ncell, nt), nt);
                parents.insert((ncell, nt), (cell, t));
                open.push(Node {
                    f: nt + ncell.manhattan(goal),
                    g: nt,
                    cell: ncell,
                });
                self.stats.generated += 1;
            };
            // Wait in place.
            if !blocked(cell, nt) {
                push(cell, &mut open);
            }
            // Axis moves.
            for n in matrix.neighbors(cell) {
                let traversable = matrix.is_free(n) || n == goal;
                if !traversable || blocked(n, nt) {
                    continue;
                }
                if t <= window
                    && (!reservations.move_free(cell, n, t)
                        || constraints.is_some_and(|c| c.edge_blocked(cell, n, t)))
                {
                    continue;
                }
                push(n, &mut open);
            }
            self.track_peak(&open, &parents);
        }
        None
    }

    fn track_peak(
        &mut self,
        open: &BinaryHeap<Node>,
        parents: &HashMap<(Cell, Time), (Cell, Time)>,
    ) {
        let bytes = open.len() * core::mem::size_of::<Node>()
            + parents.len() * (core::mem::size_of::<((Cell, Time), (Cell, Time))>() + 2);
        self.stats.peak_bytes = self.stats.peak_bytes.max(bytes);
    }
}

fn reconstruct(
    parents: &HashMap<(Cell, Time), (Cell, Time)>,
    start: Cell,
    depart: Time,
    mut cell: Cell,
    mut t: Time,
) -> Route {
    let mut grids = vec![cell];
    while (cell, t) != (start, depart) {
        let &(pc, pt) = parents.get(&(cell, t)).expect("broken parent chain");
        debug_assert_eq!(pt + 1, t);
        grids.push(pc);
        cell = pc;
        t = pt;
    }
    grids.reverse();
    Route::new(depart, grids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::first_conflict;

    fn open_matrix() -> WarehouseMatrix {
        WarehouseMatrix::empty(8, 8)
    }

    #[test]
    fn straight_line_in_empty_grid() {
        let m = open_matrix();
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(
                &m,
                &ReservationTable::new(),
                None,
                Cell::new(0, 0),
                Cell::new(0, 5),
                3,
            )
            .expect("route");
        assert_eq!(r.start, 3);
        assert_eq!(r.duration(), 5);
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn routes_around_racks() {
        let m = WarehouseMatrix::from_ascii(
            ".....\n\
             .###.\n\
             .....",
        );
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(
                &m,
                &ReservationTable::new(),
                None,
                Cell::new(1, 0),
                Cell::new(1, 4),
                0,
            )
            .expect("route");
        assert_eq!(r.duration(), 6); // around the 3-rack block
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn enters_rack_goal_but_never_crosses_racks() {
        let m = WarehouseMatrix::from_ascii(
            ".....\n\
             .##..\n\
             .....",
        );
        let goal = Cell::new(1, 1); // a rack
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(&m, &ReservationTable::new(), None, Cell::new(0, 4), goal, 0)
            .expect("route");
        assert_eq!(r.destination(), goal);
        assert!(r.validate(&m).is_ok()); // validate enforces racks-as-endpoints-only
    }

    #[test]
    fn waits_for_crossing_robot() {
        let m = open_matrix();
        let mut rt = ReservationTable::new();
        // A robot sweeps down column 2 during t=0..4, cutting our row-0 path.
        let crossing = Route::new(0, (0..5).map(|i| Cell::new(i, 2)).collect());
        rt.reserve(&crossing, 9);
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(&m, &rt, None, Cell::new(0, 0), Cell::new(0, 4), 0)
            .expect("route");
        assert!(first_conflict(&r, &crossing).is_none());
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn postpones_contested_departure() {
        let m = open_matrix();
        let mut rt = ReservationTable::new();
        rt.reserve(&Route::new(0, vec![Cell::new(0, 0), Cell::new(0, 0)]), 9);
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(&m, &rt, None, Cell::new(0, 0), Cell::new(0, 3), 0)
            .expect("route");
        assert_eq!(r.start, 2, "origin blocked for t=0..1");
    }

    #[test]
    fn respects_cbs_constraints() {
        let m = open_matrix();
        let mut cs = ConstraintSet::default();
        cs.block_vertex(Cell::new(0, 2), 2);
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(
                &m,
                &ReservationTable::new(),
                Some(&cs),
                Cell::new(0, 0),
                Cell::new(0, 4),
                0,
            )
            .expect("route");
        assert_ne!(r.position_at(2), Some(Cell::new(0, 2)));
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn gives_up_on_walled_goal() {
        let m = WarehouseMatrix::from_ascii(
            ".#.\n\
             #.#\n\
             .#.",
        );
        // Goal (1,1) is fully walled by racks: unreachable from (0,0) since
        // crossing racks is forbidden — except as an endpoint, but no free
        // neighbour path exists... actually (1,1) is free but enclosed.
        let mut astar = SpaceTimeAStar::new(AStarConfig {
            max_expansions: 10_000,
            ..Default::default()
        });
        assert!(astar
            .plan(
                &m,
                &ReservationTable::new(),
                None,
                Cell::new(0, 0),
                Cell::new(1, 1),
                0
            )
            .is_none());
    }

    #[test]
    fn stats_are_recorded() {
        let m = open_matrix();
        let mut astar = SpaceTimeAStar::default();
        astar
            .plan(
                &m,
                &ReservationTable::new(),
                None,
                Cell::new(0, 0),
                Cell::new(7, 7),
                0,
            )
            .expect("route");
        assert!(astar.stats.expansions > 0);
        assert!(astar.stats.peak_bytes > 0);
    }

    #[test]
    fn start_equals_goal() {
        let m = open_matrix();
        let mut astar = SpaceTimeAStar::default();
        let r = astar
            .plan(
                &m,
                &ReservationTable::new(),
                None,
                Cell::new(3, 3),
                Cell::new(3, 3),
                5,
            )
            .expect("route");
        assert_eq!(r.grids.len(), 1);
        assert_eq!(r.start, 5);
    }
}
