//! Grid-level space-time planning substrate.
//!
//! The baselines the paper compares against (SAP, RP, TWP, ACP — §VIII-A)
//! all search the 3-dimensional space (2-D grid + 1-D time) that the paper
//! identifies as the efficiency bottleneck. This crate implements that
//! substrate faithfully:
//!
//! * [`reservation::ReservationTable`] — per-(cell, time) and per-(edge,
//!   time) occupancy of committed routes, split into an exclusive hard
//!   layer (within-window, asserted) and a multi-owner soft layer
//!   (beyond-window optimism of windowed planners);
//! * [`astar`] — space-time A\* with wait moves, reservation awareness and
//!   CBS constraints (Hart et al. \[7\], the engine of all baselines);
//! * [`cbs`] — Conflict-Based Search (Sharon et al. \[2\]), the "offline
//!   optimal method" the RP baseline replans conflicting groups with.
//!
//! SRP itself uses this crate only for its rare fallback path (§VI remarks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod cbs;
pub mod reservation;

pub use astar::{AStarConfig, AStarStats, SpaceTimeAStar};
pub use cbs::{CbsConfig, CbsSolver};
pub use reservation::ReservationTable;
