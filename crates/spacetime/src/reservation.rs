//! Reservation tables: the grid-level collision state of the baseline
//! planners.
//!
//! A committed route reserves every `(cell, time)` it occupies (vertex
//! conflicts, Fig. 1(a)) and every directed `(from, to, time)` motion it
//! performs (swap conflicts, Fig. 1(b)). This is the 3-D structure whose
//! size — `O(route length)` entries per route — explains the memory gap to
//! SRP's two-endpoints-per-segment representation (§VIII-B).
//!
//! # Two layers: hard and soft
//!
//! The table is split along the *commitment horizon* of windowed planners
//! (TWP's RHCR scheme \[5\]; the same invariant Hvězda et al. keep in
//! context-aware reservation planning):
//!
//! * the **hard layer** holds reservations at `t < hard_until` of the
//!   booking call. These were verified free by the search that produced
//!   the route, so they are *exclusive by construction*: a cross-owner
//!   overwrite is a planner bug and is asserted on, never counted.
//! * the **soft layer** holds the optimistic beyond-window tail
//!   (`t >= hard_until`). It is an owner-keyed multimap: several owners may
//!   deliberately book the same `(cell, t)` or motion — exactly the
//!   deferred conflicts a later window slide repairs — and releasing one
//!   owner never drops a peer's booking. Each slide *promotes* soft
//!   bookings into the hard layer by replanning the route under the new
//!   window (withdraw + windowed re-commit), so promotion inherits the
//!   hard layer's by-construction exclusivity.
//!
//! Queries ([`ReservationTable::vertex_free`],
//! [`ReservationTable::move_free`]) consult *both* layers, so a search
//! bounded by its collision horizon avoids peers' optimistic tails inside
//! its own window — the behaviour that keeps within-window planning
//! consistent while beyond-window bookings stay deliberately overlapping.
//!
//! Non-windowed planners (SAP, SIPP, ACP, RP) book with
//! `hard_until = Time::MAX`: everything is hard and any double booking
//! trips the assert immediately.

use carp_warehouse::memory;
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::HashMap;

/// Tag identifying the owner of a reservation (the request id).
pub type Tag = u64;

/// Space-time reservation table with a hard (exclusive, within-window) and
/// a soft (multi-owner, beyond-window) layer.
#[derive(Debug, Default, Clone)]
pub struct ReservationTable {
    /// Hard `(cell, t)` → owner. Exclusive by construction.
    vertices: HashMap<(Cell, Time), Tag>,
    /// Hard directed motions `(from, to, t)` → owner, where the owner moves
    /// from `from` at `t` to `to` at `t + 1`. Exclusive by construction.
    edges: HashMap<(Cell, Cell, Time), Tag>,
    /// Soft `(cell, t)` → owners: optimistic beyond-window bookings, where
    /// multi-owner overlap is legal (deferred conflicts).
    soft_vertices: HashMap<(Cell, Time), Vec<Tag>>,
    /// Soft motions → owners.
    soft_edges: HashMap<(Cell, Cell, Time), Vec<Tag>>,
    /// Cumulative soft-layer bookings (see
    /// [`ReservationTable::soft_bookings`]).
    soft_bookings: u64,
}

impl ReservationTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `cell` is free at time `t` in *both* layers.
    #[inline]
    pub fn vertex_free(&self, cell: Cell, t: Time) -> bool {
        !self.vertices.contains_key(&(cell, t)) && !self.soft_vertices.contains_key(&(cell, t))
    }

    /// Whether moving `from → to` departing at time `t` is free of both the
    /// target-vertex conflict (at `t + 1`) and the swap conflict (someone
    /// moving `to → from` at `t`), in both layers.
    #[inline]
    pub fn move_free(&self, from: Cell, to: Cell, t: Time) -> bool {
        self.vertex_free(to, t + 1)
            && !self.edges.contains_key(&(to, from, t))
            && !self.soft_edges.contains_key(&(to, from, t))
    }

    /// Hard-layer owner of the reservation at `(cell, t)`, if any.
    pub fn vertex_owner(&self, cell: Cell, t: Time) -> Option<Tag> {
        self.vertices.get(&(cell, t)).copied()
    }

    /// Soft-layer owners booked at `(cell, t)` (empty when none).
    pub fn soft_vertex_owners(&self, cell: Cell, t: Time) -> &[Tag] {
        self.soft_vertices
            .get(&(cell, t))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Reserve every vertex and motion of `route` for `tag`, entirely in
    /// the hard layer (`hard_until = Time::MAX`) — the contract of every
    /// planner that pre-checks its commits against the table.
    pub fn reserve(&mut self, route: &Route, tag: Tag) {
        self.reserve_windowed(route, tag, 0, Time::MAX);
    }

    /// Reserve `route` for `tag` with the window split at `hard_until`
    /// (exclusive): keys at `t < hard_until` go to the hard layer and must
    /// be free (the search verified them — a cross-owner occupant is a bug
    /// and asserts); keys at `t >= hard_until` are optimistic and go to the
    /// soft multimap, where overlap with other owners is legal.
    ///
    /// Keys at `t < active_from` are *history* and are not booked at all:
    /// when a windowed planner recommits a repaired route, its travelled
    /// prefix describes motion that already happened. No search ever
    /// queries the past, and hard-layer exclusivity cannot be enforced
    /// retroactively — under sparse `advance` schedules a deferred soft
    /// conflict can come due with no repair opportunity, and the execution
    /// collision (the audit's to count, not this table's) would put the
    /// same past key in two routes' prefixes. Booking only `t >=
    /// active_from` keeps the table a statement about the *future* and
    /// prunes dead keys as a side effect.
    pub fn reserve_windowed(
        &mut self,
        route: &Route,
        tag: Tag,
        active_from: Time,
        hard_until: Time,
    ) {
        self.insert(route, tag, active_from, hard_until, true);
    }

    /// Re-book a withdrawn route exactly as it was held before (same
    /// `hard_until`), without counting its soft keys as new bookings. This
    /// is the failed-repair path of windowed planners: the route's state
    /// does not change, so the optimism metrics must not inflate. History
    /// (`t < active_from`) is dropped, as in
    /// [`ReservationTable::reserve_windowed`].
    pub fn restore_windowed(
        &mut self,
        route: &Route,
        tag: Tag,
        active_from: Time,
        hard_until: Time,
    ) {
        self.insert(route, tag, active_from, hard_until, false);
    }

    fn insert(
        &mut self,
        route: &Route,
        tag: Tag,
        active_from: Time,
        hard_until: Time,
        count: bool,
    ) {
        for (t, cell) in route.occupancy() {
            if t < active_from {
                continue;
            }
            if t < hard_until {
                let prev = self.vertices.insert((cell, t), tag);
                assert!(
                    prev.is_none() || prev == Some(tag),
                    "hard-layer vertex double booking at {cell:?} t={t}: \
                     owned by {prev:?}, incoming owner {tag}"
                );
            } else {
                let owners = self.soft_vertices.entry((cell, t)).or_default();
                if !owners.contains(&tag) {
                    owners.push(tag);
                    if count {
                        self.soft_bookings += 1;
                    }
                }
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let t = route.start + k as Time;
            if t < active_from {
                // A motion departing before `active_from` already happened.
                continue;
            }
            if t < hard_until {
                let prev = self.edges.insert((w[0], w[1], t), tag);
                assert!(
                    prev.is_none() || prev == Some(tag),
                    "hard-layer edge double booking {:?}->{:?} t={t}: \
                     owned by {prev:?}, incoming owner {tag}",
                    w[0],
                    w[1],
                );
            } else {
                let owners = self.soft_edges.entry((w[0], w[1], t)).or_default();
                if !owners.contains(&tag) {
                    owners.push(tag);
                    if count {
                        self.soft_bookings += 1;
                    }
                }
            }
        }
    }

    /// Release every reservation `route` holds for `tag`, in both layers.
    /// Entries owned by other tags — including soft co-bookings on the same
    /// keys — are left untouched: a release can never unprotect a peer.
    pub fn release(&mut self, route: &Route, tag: Tag) {
        for (t, cell) in route.occupancy() {
            if self.vertices.get(&(cell, t)) == Some(&tag) {
                self.vertices.remove(&(cell, t));
            }
            if let Some(owners) = self.soft_vertices.get_mut(&(cell, t)) {
                owners.retain(|&o| o != tag);
                if owners.is_empty() {
                    self.soft_vertices.remove(&(cell, t));
                }
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let key = (w[0], w[1], route.start + k as Time);
            if self.edges.get(&key) == Some(&tag) {
                self.edges.remove(&key);
            }
            if let Some(owners) = self.soft_edges.get_mut(&key) {
                owners.retain(|&o| o != tag);
                if owners.is_empty() {
                    self.soft_edges.remove(&key);
                }
            }
        }
    }

    /// Cumulative count of soft-layer (beyond-window) bookings (monotone;
    /// restores after failed repairs do not count). Zero for planners that
    /// only commit fully-checked routes (SAP, SIPP, ACP, RP); positive
    /// under TWP's optimistic beyond-window commits, where it measures how
    /// much optimism the window slides are asked to promote.
    pub fn soft_bookings(&self) -> u64 {
        self.soft_bookings
    }

    /// Number of soft `(key, owner)` bookings at `t < window_end`: optimism
    /// that a repair round should already have promoted into the hard layer
    /// but could not (failed repairs). Zero whenever every repair up to
    /// `window_end` succeeded.
    pub fn window_debt(&self, window_end: Time) -> u64 {
        let vertices: usize = self
            .soft_vertices
            .iter()
            .filter(|((_, t), _)| *t < window_end)
            .map(|(_, owners)| owners.len())
            .sum();
        let edges: usize = self
            .soft_edges
            .iter()
            .filter(|((_, _, t), _)| *t < window_end)
            .map(|(_, owners)| owners.len())
            .sum();
        (vertices + edges) as u64
    }

    /// Number of vertex reservations (hard + soft keys).
    pub fn len(&self) -> usize {
        self.vertices.len() + self.soft_vertices.len()
    }

    /// Whether the table holds no reservations in either layer.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
            && self.edges.is_empty()
            && self.soft_vertices.is_empty()
            && self.soft_edges.is_empty()
    }

    /// Estimated heap bytes (MC metric).
    pub fn memory_bytes(&self) -> usize {
        memory::hashmap_bytes(&self.vertices)
            + memory::hashmap_bytes(&self.edges)
            + memory::hashmap_bytes(&self.soft_vertices)
            + memory::hashmap_bytes(&self.soft_edges)
            + self
                .soft_vertices
                .values()
                .map(|v| v.capacity() * core::mem::size_of::<Tag>())
                .sum::<usize>()
            + self
                .soft_edges
                .values()
                .map(|v| v.capacity() * core::mem::size_of::<Tag>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(start: Time, pairs: &[(u16, u16)]) -> Route {
        Route::new(start, pairs.iter().map(|&(r, c)| Cell::new(r, c)).collect())
    }

    #[test]
    fn reserve_blocks_vertices_and_swaps() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 1);
        // Vertex occupancy.
        assert!(!rt.vertex_free(Cell::new(0, 1), 1));
        assert!(rt.vertex_free(Cell::new(0, 1), 0));
        // Swap: moving (0,1) -> (0,0) departing at t=0 crosses the reserved
        // (0,0) -> (0,1) motion.
        assert!(!rt.move_free(Cell::new(0, 1), Cell::new(0, 0), 0));
        // Following one step behind is fine.
        assert!(rt.move_free(Cell::new(0, 0), Cell::new(0, 1), 2));
    }

    #[test]
    fn move_free_checks_target_vertex() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 2), (0, 2)]), 1);
        assert!(!rt.move_free(Cell::new(0, 1), Cell::new(0, 2), 0));
        assert!(rt.move_free(Cell::new(0, 1), Cell::new(0, 2), 1));
    }

    #[test]
    fn release_is_exact_inverse() {
        let mut rt = ReservationTable::new();
        let r1 = route(0, &[(0, 0), (0, 1)]);
        let r2 = route(5, &[(0, 0), (1, 0)]);
        rt.reserve(&r1, 1);
        rt.reserve(&r2, 2);
        rt.release(&r1, 1);
        assert!(rt.vertex_free(Cell::new(0, 1), 1));
        assert!(
            !rt.vertex_free(Cell::new(0, 0), 5),
            "other owner must survive"
        );
        rt.release(&r2, 2);
        assert!(rt.is_empty());
    }

    #[test]
    fn release_ignores_foreign_tags() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1)]);
        rt.reserve(&r, 1);
        rt.release(&r, 99);
        assert!(!rt.vertex_free(Cell::new(0, 0), 0));
    }

    #[test]
    fn waiting_reserves_no_edges() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(3, 3), (3, 3), (3, 3)]), 7);
        assert_eq!(rt.len(), 3);
        assert!(rt.move_free(Cell::new(3, 4), Cell::new(3, 5), 0));
        // But the waited-on cell is vertex-blocked.
        assert!(!rt.move_free(Cell::new(3, 4), Cell::new(3, 3), 0));
    }

    #[test]
    #[should_panic(expected = "hard-layer vertex double booking")]
    fn hard_layer_cross_owner_overwrite_asserts() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 1);
        // A second owner booking the same corridor in the hard layer is a
        // planner bug, not a countable event.
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 2);
    }

    #[test]
    fn hard_layer_same_owner_rebooking_is_idempotent() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1), (0, 2)]);
        rt.reserve(&r, 2);
        rt.reserve(&r, 2);
        assert_eq!(rt.vertex_owner(Cell::new(0, 1), 1), Some(2));
    }

    #[test]
    fn windowed_reserve_splits_layers_at_hard_until() {
        let mut rt = ReservationTable::new();
        // Keys at t < 2 are hard, the optimistic tail is soft.
        rt.reserve_windowed(&route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]), 5, 0, 2);
        assert_eq!(rt.vertex_owner(Cell::new(0, 1), 1), Some(5));
        assert_eq!(rt.vertex_owner(Cell::new(0, 2), 2), None);
        assert_eq!(rt.soft_vertex_owners(Cell::new(0, 2), 2), &[5]);
        // Both layers block queries identically.
        assert!(!rt.vertex_free(Cell::new(0, 1), 1));
        assert!(!rt.vertex_free(Cell::new(0, 2), 2));
        assert!(!rt.move_free(Cell::new(0, 3), Cell::new(0, 2), 2));
    }

    #[test]
    fn soft_booking_count_is_exact() {
        let mut rt = ReservationTable::new();
        // Route occupies t=0..3 over 4 cells with 3 motions; hard_until=2
        // leaves the vertices at t=2,3 and the motion departing at t=2 soft.
        rt.reserve_windowed(&route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]), 5, 0, 2);
        assert_eq!(rt.soft_bookings(), 3);
    }

    /// The steal-then-release hole (the bug class this table closes):
    /// owner A books a corridor, owner B books the same keys beyond the
    /// window, B releases — A's corridor must still be protected. On the
    /// old single-owner table B's booking overwrote A's keys and B's
    /// release removed them entirely, letting a third robot be planned
    /// straight through A's committed corridor.
    #[test]
    fn steal_then_release_keeps_earlier_owner_protected() {
        let mut rt = ReservationTable::new();
        let corridor = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        rt.reserve_windowed(&corridor, 1, 0, 0); // A: all beyond-window
        rt.reserve_windowed(&corridor, 2, 0, 0); // B: deliberate co-booking
        rt.release(&corridor, 2); // B withdraws
        for (t, cell) in corridor.occupancy() {
            assert!(
                !rt.vertex_free(cell, t),
                "B's release unprotected A's {cell:?} at t={t}"
            );
        }
        assert_eq!(rt.soft_vertex_owners(Cell::new(0, 2), 2), &[1]);
        // A's own release empties the table.
        rt.release(&corridor, 1);
        assert!(rt.is_empty());
    }

    #[test]
    fn restore_does_not_inflate_soft_bookings() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1), (0, 2)]);
        rt.reserve_windowed(&r, 1, 0, 0);
        let booked = rt.soft_bookings();
        assert!(booked > 0);
        // Withdraw + restore (the failed-repair round trip) is metric-neutral.
        rt.release(&r, 1);
        rt.restore_windowed(&r, 1, 0, 0);
        assert_eq!(rt.soft_bookings(), booked);
        assert!(!rt.vertex_free(Cell::new(0, 1), 1));
    }

    #[test]
    fn window_debt_counts_past_due_soft_bookings() {
        let mut rt = ReservationTable::new();
        // 3 soft vertices (t=0,1,2) + 2 soft edges (t=0,1).
        rt.reserve_windowed(&route(0, &[(0, 0), (0, 1), (0, 2)]), 1, 0, 0);
        assert_eq!(rt.window_debt(0), 0, "nothing is past due yet");
        assert_eq!(rt.window_debt(1), 2, "vertex + edge at t=0");
        assert_eq!(rt.window_debt(100), 5, "the whole tail is past due");
        // A co-booking doubles the debt on shared keys.
        rt.reserve_windowed(&route(0, &[(0, 0), (0, 1), (0, 2)]), 2, 0, 0);
        assert_eq!(rt.window_debt(100), 10);
        rt.release(&route(0, &[(0, 0), (0, 1), (0, 2)]), 2);
        assert_eq!(rt.window_debt(100), 5);
    }

    #[test]
    fn memory_tracks_population() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        rt.reserve(&r, 1);
        assert!(rt.memory_bytes() > 0);
    }
}
