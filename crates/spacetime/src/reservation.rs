//! Reservation tables: the grid-level collision state of the baseline
//! planners.
//!
//! A committed route reserves every `(cell, time)` it occupies (vertex
//! conflicts, Fig. 1(a)) and every directed `(from, to, time)` motion it
//! performs (swap conflicts, Fig. 1(b)). This is the 3-D structure whose
//! size — `O(route length)` entries per route — explains the memory gap to
//! SRP's two-endpoints-per-segment representation (§VIII-B).

use carp_warehouse::memory;
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::HashMap;

/// Tag identifying the owner of a reservation (the request id).
pub type Tag = u64;

/// Space-time reservation table.
#[derive(Debug, Default, Clone)]
pub struct ReservationTable {
    /// `(cell, t)` → owner.
    vertices: HashMap<(Cell, Time), Tag>,
    /// Directed motions `(from, to, t)` → owner, where the owner moves from
    /// `from` at `t` to `to` at `t + 1`.
    edges: HashMap<(Cell, Cell, Time), Tag>,
    /// Reservations that overwrote a different owner's booking (see
    /// [`ReservationTable::reservation_repairs`]).
    repairs: u64,
}

impl ReservationTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `cell` is free at time `t`.
    #[inline]
    pub fn vertex_free(&self, cell: Cell, t: Time) -> bool {
        !self.vertices.contains_key(&(cell, t))
    }

    /// Whether moving `from → to` departing at time `t` is free of both the
    /// target-vertex conflict (at `t + 1`) and the swap conflict (someone
    /// moving `to → from` at `t`).
    #[inline]
    pub fn move_free(&self, from: Cell, to: Cell, t: Time) -> bool {
        self.vertex_free(to, t + 1) && !self.edges.contains_key(&(to, from, t))
    }

    /// Owner of the reservation at `(cell, t)`, if any.
    pub fn vertex_owner(&self, cell: Cell, t: Time) -> Option<Tag> {
        self.vertices.get(&(cell, t)).copied()
    }

    /// Reserve every vertex and motion of `route` for `tag`.
    ///
    /// An existing reservation by a *different* owner on the same key means
    /// the caller committed a route overlapping a peer's booking. Windowed
    /// planners do this by design: TWP commits optimistically beyond its
    /// collision window and repairs the overlap on the next slide, so the
    /// overwrite is counted (see [`ReservationTable::reservation_repairs`])
    /// rather than asserted on — the later booking wins, exactly as the
    /// repair round will re-reserve it.
    pub fn reserve(&mut self, route: &Route, tag: Tag) {
        for (t, cell) in route.occupancy() {
            let prev = self.vertices.insert((cell, t), tag);
            if prev.is_some() && prev != Some(tag) {
                self.repairs += 1;
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] != w[1] {
                let prev = self
                    .edges
                    .insert((w[0], w[1], route.start + k as Time), tag);
                if prev.is_some() && prev != Some(tag) {
                    self.repairs += 1;
                }
            }
        }
    }

    /// Release every reservation `route` holds for `tag`. Entries owned by
    /// other tags are left untouched.
    pub fn release(&mut self, route: &Route, tag: Tag) {
        for (t, cell) in route.occupancy() {
            if self.vertices.get(&(cell, t)) == Some(&tag) {
                self.vertices.remove(&(cell, t));
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] != w[1] {
                let key = (w[0], w[1], route.start + k as Time);
                if self.edges.get(&key) == Some(&tag) {
                    self.edges.remove(&key);
                }
            }
        }
    }

    /// Cumulative count of reservations that overwrote a different owner's
    /// booking (monotone; never reset). Zero for planners that only commit
    /// routes pre-checked against the table (SAP, SIPP, ACP); positive under
    /// TWP's optimistic beyond-window commits, where it measures how much
    /// window-consistency debt the repair rounds are carrying.
    pub fn reservation_repairs(&self) -> u64 {
        self.repairs
    }

    /// Number of vertex reservations.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the table holds no reservations.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Estimated heap bytes (MC metric).
    pub fn memory_bytes(&self) -> usize {
        memory::hashmap_bytes(&self.vertices) + memory::hashmap_bytes(&self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(start: Time, pairs: &[(u16, u16)]) -> Route {
        Route::new(start, pairs.iter().map(|&(r, c)| Cell::new(r, c)).collect())
    }

    #[test]
    fn reserve_blocks_vertices_and_swaps() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 1);
        // Vertex occupancy.
        assert!(!rt.vertex_free(Cell::new(0, 1), 1));
        assert!(rt.vertex_free(Cell::new(0, 1), 0));
        // Swap: moving (0,1) -> (0,0) departing at t=0 crosses the reserved
        // (0,0) -> (0,1) motion.
        assert!(!rt.move_free(Cell::new(0, 1), Cell::new(0, 0), 0));
        // Following one step behind is fine.
        assert!(rt.move_free(Cell::new(0, 0), Cell::new(0, 1), 2));
    }

    #[test]
    fn move_free_checks_target_vertex() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 2), (0, 2)]), 1);
        assert!(!rt.move_free(Cell::new(0, 1), Cell::new(0, 2), 0));
        assert!(rt.move_free(Cell::new(0, 1), Cell::new(0, 2), 1));
    }

    #[test]
    fn release_is_exact_inverse() {
        let mut rt = ReservationTable::new();
        let r1 = route(0, &[(0, 0), (0, 1)]);
        let r2 = route(5, &[(0, 0), (1, 0)]);
        rt.reserve(&r1, 1);
        rt.reserve(&r2, 2);
        rt.release(&r1, 1);
        assert!(rt.vertex_free(Cell::new(0, 1), 1));
        assert!(
            !rt.vertex_free(Cell::new(0, 0), 5),
            "other owner must survive"
        );
        rt.release(&r2, 2);
        assert!(rt.is_empty());
    }

    #[test]
    fn release_ignores_foreign_tags() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1)]);
        rt.reserve(&r, 1);
        rt.release(&r, 99);
        assert!(!rt.vertex_free(Cell::new(0, 0), 0));
    }

    #[test]
    fn waiting_reserves_no_edges() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(3, 3), (3, 3), (3, 3)]), 7);
        assert_eq!(rt.len(), 3);
        assert!(rt.move_free(Cell::new(3, 4), Cell::new(3, 5), 0));
        // But the waited-on cell is vertex-blocked.
        assert!(!rt.move_free(Cell::new(3, 4), Cell::new(3, 3), 0));
    }

    #[test]
    fn double_booking_is_counted_not_fatal() {
        let mut rt = ReservationTable::new();
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 1);
        assert_eq!(rt.reservation_repairs(), 0);
        // A second owner books the same corridor: 3 vertex overwrites plus
        // 2 motion overwrites, all counted, latest owner wins.
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 2);
        assert_eq!(rt.reservation_repairs(), 5);
        assert_eq!(rt.vertex_owner(Cell::new(0, 1), 1), Some(2));
        // Re-reserving under the same tag is idempotent, not a repair.
        rt.reserve(&route(0, &[(0, 0), (0, 1), (0, 2)]), 2);
        assert_eq!(rt.reservation_repairs(), 5);
    }

    #[test]
    fn memory_tracks_population() {
        let mut rt = ReservationTable::new();
        let r = route(0, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        rt.reserve(&r, 1);
        assert!(rt.memory_bytes() > 0);
    }
}
